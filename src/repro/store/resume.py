"""Resume planner: reconstruct the remaining work of a stored campaign.

``python -m repro resume <campaign-id>`` calls :func:`plan_resume` to
load what an interrupted campaign already committed — the restored
partial reports of every ``done`` chunk plus the list of quarantined
chunks (which a resume retries; only committed successes are skipped) —
and the original config, from which the CLI rebuilds the workload and
re-enters the same campaign entry point.  Because chunk boundaries are a
pure function of the stored config (``checkpoint_every`` over the seed
range, or ``pin_prefix`` arity), the resumed invocation reconstructs the
identical chunk list and the deterministic merge yields an artifact
equal to an uninterrupted run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.store.checkpoint import restore_completed
from repro.store.schema import (
    STATUS_COMPLETE,
    CampaignStore,
    StoreError,
)


@dataclass
class ResumePlan:
    """Everything a resumed invocation needs from the store."""

    campaign: Dict[str, Any]
    #: Chunk index → restored partial report (skipped by the runner).
    completed: Dict[int, Any] = field(default_factory=dict)
    #: Chunk rows previously quarantined (retried by the resume).
    quarantined: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def campaign_id(self) -> str:
        return self.campaign["id"]

    @property
    def kind(self) -> str:
        return self.campaign["kind"]

    @property
    def config(self) -> Dict[str, Any]:
        return self.campaign["config"]

    def describe(self) -> str:
        return (
            f"campaign {self.campaign_id} ({self.kind}, "
            f"{self.campaign['workload']}): {len(self.completed)} chunk(s) "
            f"checkpointed, {len(self.quarantined)} quarantined, "
            f"status {self.campaign['status']}"
        )


def plan_resume(store: CampaignStore, campaign_id: str) -> ResumePlan:
    """Load the resume state of ``campaign_id`` from ``store``.

    Raises :class:`~repro.store.schema.StoreError` for an unknown id.
    Resuming a ``complete`` campaign is legal — every chunk is already
    ``done``, so the runner skips straight to the merge and reproduces
    the original artifact (a cheap way to regenerate lost output files).
    """
    campaign = store.get_campaign(campaign_id)
    if campaign is None:
        known = ", ".join(c["id"] for c in store.list_campaigns()) or "<none>"
        raise StoreError(
            f"no campaign {campaign_id!r} in {store.path!r} (known: {known})"
        )
    return ResumePlan(
        campaign=campaign,
        completed=restore_completed(store, campaign_id),
        quarantined=store.quarantined_chunks(campaign_id),
    )


def is_complete(plan: ResumePlan) -> bool:
    return plan.campaign["status"] == STATUS_COMPLETE


__all__ = ["ResumePlan", "plan_resume", "is_complete"]

"""Sequential stack specifications.

:class:`StackSpec` is the strict LIFO stack: pushes always succeed, a
successful pop returns the top, and an empty-pop response is legal only
on an empty stack.  This is the *client-facing* specification of the
elimination stack (whose operations never return failure).

:class:`CentralStackSpec` is §4's specification of Figure 2's central
stack ``S``: operations may *fail* (returning ``False``) under
contention, in which case they have no effect — the paper's ``WF_S``
replays only the successful operations.  A failed pop is
indistinguishable from an empty pop at the interface (both are
``(False, 0)``), so ``(False, 0)`` responses are always legal and
effect-free.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.checkers.seqspec import SequentialSpec
from repro.core.actions import Invocation, Operation


class StackSpec(SequentialSpec):
    """Strict LIFO stack: state is the tuple of values, top last.

    ``initial`` is the preseeded content, bottom-first (top last) —
    pair with ``ManualTreiberStack.seed``.
    """

    def __init__(self, oid: str = "S", initial: Iterable[Any] = ()) -> None:
        super().__init__(oid)
        self._initial = tuple(initial)

    def initial(self) -> Hashable:
        return self._initial

    def apply(
        self, state: Tuple[Any, ...], op: Operation
    ) -> Optional[Tuple[Any, ...]]:
        if op.method == "push" and len(op.args) == 1:
            if op.value == (True,):
                return state + (op.args[0],)
            return None
        if op.method == "pop" and not op.args:
            if op.value == (False, 0):
                return state if not state else None
            if (
                len(op.value) == 2
                and op.value[0] is True
                and state
                and state[-1] == op.value[1]
            ):
                return state[:-1]
            return None
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        if invocation.method == "push":
            return [(True,)]
        if invocation.method == "pop":
            return [(False, 0)]
        return ()


class CentralStackSpec(SequentialSpec):
    """Figure 2's central stack: single-attempt ops that may fail."""

    def __init__(self, oid: str = "S") -> None:
        super().__init__(oid)

    def initial(self) -> Hashable:
        return ()

    def apply(
        self, state: Tuple[Any, ...], op: Operation
    ) -> Optional[Tuple[Any, ...]]:
        if op.method == "push" and len(op.args) == 1:
            if op.value == (True,):
                return state + (op.args[0],)
            if op.value == (False,):
                return state  # failed push: no effect, always legal
            return None
        if op.method == "pop" and not op.args:
            if op.value == (False, 0):
                return state  # contention or empty: no effect
            if (
                len(op.value) == 2
                and op.value[0] is True
                and state
                and state[-1] == op.value[1]
            ):
                return state[:-1]
            return None
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        if invocation.method == "push":
            return [(True,), (False,)]
        if invocation.method == "pop":
            return [(False, 0)]
        return ()

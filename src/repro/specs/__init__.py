"""Object specifications.

Concurrency-aware specs (transition systems over CA-elements, §4):

* :class:`~repro.specs.exchanger_spec.ExchangerSpec` — matched swap pairs
  or failed singletons; shared by the exchanger and the elimination array.
* :class:`~repro.specs.sync_queue_spec.SyncQueueSpec` — put/take handoff
  pairs.
* :class:`~repro.specs.snapshot_spec.ImmediateSnapshotSpec` — Neiger-style
  block spec of the immediate snapshot.
* :class:`~repro.specs.dual_stack_spec.DualStackSpec` — LIFO with
  fulfilment pairs for waiting pops.
* :class:`~repro.specs.dual_queue_spec.DualQueueSpec` — FIFO with
  fulfilment pairs for waiting dequeues (the correct E13 counterpart).

Sequential specs (transition systems over operations):

* :class:`~repro.specs.stack_spec.StackSpec` — strict LIFO stack (the
  elimination stack's client-facing spec).
* :class:`~repro.specs.stack_spec.CentralStackSpec` — Figure 2's central
  stack, whose operations may fail under contention (§4's ``WF_S``).
* :class:`~repro.specs.queue_spec.QueueSpec` — strict FIFO queue.
* :class:`~repro.specs.register_spec.RegisterSpec` /
  :class:`~repro.specs.register_spec.CounterSpec` — plain linearizable
  objects for the singleton special case (E7).
"""

from repro.specs.exchanger_spec import (
    ExchangerSpec,
    SequentializedExchangerSpec,
)
from repro.specs.stack_spec import CentralStackSpec, StackSpec
from repro.specs.queue_spec import QueueSpec
from repro.specs.register_spec import CounterSpec, RegisterSpec
from repro.specs.sync_queue_spec import SyncQueueSpec
from repro.specs.snapshot_spec import ImmediateSnapshotSpec
from repro.specs.dual_stack_spec import DualStackSpec
from repro.specs.dual_queue_spec import DualQueueSpec

__all__ = [
    "CentralStackSpec",
    "CounterSpec",
    "DualQueueSpec",
    "DualStackSpec",
    "ExchangerSpec",
    "ImmediateSnapshotSpec",
    "QueueSpec",
    "RegisterSpec",
    "SequentializedExchangerSpec",
    "StackSpec",
    "SyncQueueSpec",
]

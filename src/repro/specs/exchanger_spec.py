"""The exchanger's concurrency-aware specification (§4).

The set of legal CA-traces is ``S₁S₂S₃…`` where each element ``Sᵢ`` is

* ``E.swap(t, v, t', v')`` — the pair
  ``E.{(t, ex(v) ▷ (true, v')), (t', ex(v') ▷ (true, v))}`` with
  ``t ≠ t'``: two concurrent threads successfully swap values; or
* ``E.{(t, ex(v) ▷ (false, v))}`` — a failed exchange returning the
  thread's own value.

The spec is stateless (any interleaving of swaps and failures is legal),
which is exactly why a *sequential* spec is impossible: the pair element
is irreducibly concurrent (§3's H₃ argument — splitting a swap into a
sequence admits the undesired prefix in which one thread has exchanged
without a partner).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from repro.checkers.caspec import CASpec
from repro.checkers.seqspec import SequentialSpec
from repro.core.actions import Invocation, Operation
from repro.core.catrace import CAElement


def is_swap_pair(element: CAElement, method: str = "exchange") -> bool:
    """Whether ``element`` is a matched swap pair ``o.swap(t, v, t', v')``."""
    if len(element) != 2:
        return False
    first, second = sorted(element.operations, key=str)
    return _matches_swap(first, second, method) and _matches_swap(
        second, first, method
    )


def _matches_swap(a: Operation, b: Operation, method: str) -> bool:
    """``a`` is a successful exchange receiving ``b``'s offered value."""
    return (
        a.method == method
        and b.method == method
        and a.tid != b.tid
        and len(a.args) == 1
        and len(b.args) == 1
        and a.value == (True, b.args[0])
    )


def is_failed_exchange(element: CAElement, method: str = "exchange") -> bool:
    """Whether ``element`` is a failed singleton ``o.{(t, ex(v) ▷ false, v)}``."""
    if not element.is_singleton():
        return False
    op = element.single()
    return (
        op.method == method
        and len(op.args) == 1
        and op.value == (False, op.args[0])
    )


class ExchangerSpec(CASpec):
    """CA-spec of the exchanger (and of the elimination array, §5)."""

    def __init__(self, oid: str = "E", method: str = "exchange") -> None:
        super().__init__(oid)
        self.method = method

    def initial(self) -> Hashable:
        return 0  # stateless: a single abstract state

    def step(self, state: Hashable, element: CAElement) -> Optional[Hashable]:
        if element.oid != self.oid:
            return None
        if is_swap_pair(element, self.method) or is_failed_exchange(
            element, self.method
        ):
            return state
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        """A pending ``exchange(v)`` can always be completed as a failure
        (the wait-free path); successful completions require a concrete
        partner and are found through the failure-free branch instead."""
        if invocation.method == self.method and len(invocation.args) == 1:
            return [(False, invocation.args[0])]
        return ()

    def response_candidates_in(
        self, invocation: Invocation, history
    ) -> Iterable[Tuple[Any, ...]]:
        """Context-aware completions: besides failing, a pending
        ``exchange(v)`` may have swapped with any *other* thread's
        exchange present in the history — so ``(True, w)`` is worth
        trying for each such offered value ``w``."""
        if invocation.method != self.method or len(invocation.args) != 1:
            return ()
        candidates = [(False, invocation.args[0])]
        seen = set()
        for action in history:
            if (
                action.is_invocation
                and action.oid == invocation.oid
                and action.method == self.method
                and action.tid != invocation.tid
                and len(action.args) == 1
                and action.args[0] not in seen
            ):
                seen.add(action.args[0])
                candidates.append((True, action.args[0]))
        return candidates


class SequentializedExchangerSpec(SequentialSpec):
    """The §3 strawman: the *least bad* sequential exchanger spec.

    The only way a sequential specification can explain a successful
    swap is to let exchanges pair up **across time**: a successful
    ``exchange(v) ▷ (true, v')`` either consumes a previously "owed"
    value ``v'`` or goes on account, waiting for a later partner.  This
    spec explains ``H1``/``H3`` — but, being prefix-closed, it also
    accepts ``H3'``, a thread exchanging without any partner ever
    existing: the undesired behaviour that makes every sequential
    exchanger spec "either too restrictive or too loose" (§3).

    It exists in the library (rather than only in tests) because the E1
    experiment and the Figure-3 walkthrough both need the strawman to
    demonstrate the dilemma.
    """

    def __init__(self, oid: str = "E", method: str = "exchange") -> None:
        super().__init__(oid)
        self.method = method

    def initial(self) -> Hashable:
        return ()

    def apply(self, state, op: Operation) -> Optional[Hashable]:
        if op.method != self.method or len(op.args) != 1:
            return None
        value = op.args[0]
        if op.value == (False, value):
            return state
        if len(op.value) == 2 and op.value[0] is True:
            received = op.value[1]
            if received in state:
                index = state.index(received)
                return state[:index] + state[index + 1 :]
            return state + (value,)
        return None

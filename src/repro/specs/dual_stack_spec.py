"""Concurrency-aware spec of the dual stack (§6, Scherer & Scott [14]).

Scherer & Scott specify dual data structures with *two* linearization
points per waiting operation (the "request" and the "follow-up"); the
paper observes that a CA-trace spec needs only one CA-element per
fulfilment, streamlining the specification.  Concretely:

* ``DS.{(t, push(v) ▷ true)}`` — an ordinary push; pushes ``v``.
* ``DS.{(t, pop() ▷ (true, v))}`` — an ordinary pop; legal iff ``v`` is
  the top of the stack.
* ``DS.{(t, push(v) ▷ true), (t', pop() ▷ (true, v))}`` — a *fulfilment*
  pair: a waiting pop is handed ``v`` directly by a concurrent push.
  Legal only on an **empty** stack (a pop waits only when there is no
  data — in the implementation, data nodes and reservations never
  coexist), and the stack stays empty.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.checkers.caspec import CASpec
from repro.core.actions import Operation
from repro.core.catrace import CAElement


def _is_push(op: Operation) -> bool:
    return op.method == "push" and len(op.args) == 1 and op.value == (True,)


def _is_pop(op: Operation) -> bool:
    return (
        op.method == "pop"
        and not op.args
        and len(op.value) == 2
        and op.value[0] is True
    )


class DualStackSpec(CASpec):
    """State is the tuple of stacked data values, top last."""

    def __init__(self, oid: str = "DS") -> None:
        super().__init__(oid)

    def initial(self) -> Hashable:
        return ()

    def step(
        self, state: Tuple[Any, ...], element: CAElement
    ) -> Optional[Tuple[Any, ...]]:
        if element.oid != self.oid:
            return None
        if element.is_singleton():
            op = element.single()
            if _is_push(op):
                return state + (op.args[0],)
            if _is_pop(op) and state and state[-1] == op.value[1]:
                return state[:-1]
            return None
        if len(element) == 2:
            ops = sorted(element.operations, key=lambda op: op.method)
            pop, push = (
                (ops[0], ops[1]) if ops[0].method == "pop" else (ops[1], ops[0])
            )
            if (
                _is_push(push)
                and _is_pop(pop)
                and push.tid != pop.tid
                and pop.value == (True, push.args[0])
                and not state
            ):
                return state
            return None
        return None

"""Concurrency-aware spec of the dual queue (§6, Scherer & Scott [14]).

Mirrors :class:`~repro.specs.dual_stack_spec.DualStackSpec` with FIFO
state:

* ``DQ.{(t, enqueue(v) ▷ true)}`` — appends ``v``;
* ``DQ.{(t, dequeue() ▷ (true, v))}`` — legal iff ``v`` is the front;
* ``DQ.{(t, enqueue(v) ▷ true), (t', dequeue() ▷ (true, v))}`` — a
  fulfilment pair, legal only on an **empty** queue (reservations and
  data never coexist), leaving it empty.

The contrast with the *naive* elimination queue (E13) is exactly here:
the fulfilment element requires emptiness, and the implementation
enforces it by queueing the reservations themselves.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.checkers.caspec import CASpec
from repro.core.actions import Operation
from repro.core.catrace import CAElement


def _is_enqueue(op: Operation) -> bool:
    return (
        op.method == "enqueue" and len(op.args) == 1 and op.value == (True,)
    )


def _is_dequeue(op: Operation) -> bool:
    return (
        op.method == "dequeue"
        and not op.args
        and len(op.value) == 2
        and op.value[0] is True
    )


class DualQueueSpec(CASpec):
    """State is the tuple of queued data values, front first."""

    def __init__(self, oid: str = "DQ") -> None:
        super().__init__(oid)

    def initial(self) -> Hashable:
        return ()

    def step(
        self, state: Tuple[Any, ...], element: CAElement
    ) -> Optional[Tuple[Any, ...]]:
        if element.oid != self.oid:
            return None
        if element.is_singleton():
            op = element.single()
            if _is_enqueue(op):
                return state + (op.args[0],)
            if _is_dequeue(op) and state and state[0] == op.value[1]:
                return state[1:]
            return None
        if len(element) == 2:
            ops = sorted(element.operations, key=lambda op: op.method)
            deq, enq = (
                (ops[0], ops[1])
                if ops[0].method == "dequeue"
                else (ops[1], ops[0])
            )
            if (
                _is_enqueue(enq)
                and _is_dequeue(deq)
                and enq.tid != deq.tid
                and deq.value == (True, enq.args[0])
                and not state
            ):
                return state
            return None
        return None

"""Set-sequential spec of the immediate atomic snapshot (§6, Neiger [18],
Borowsky & Gafni [2]).

A legal CA-trace is a sequence of *blocks*; the operations of one block
deposit their values simultaneously and each returns the view consisting
of everything deposited in its own block and all earlier blocks.  Each
participant writes at most once (the object is one-shot).

This is the canonical example of a specification expressible with sets of
simultaneous operations but not sequentially: in any sequential history
the first writer's view is a singleton, yet the immediate snapshot allows
(and BG executions produce) runs where *every* view has size ≥ 2 because
threads see each other mutually.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Hashable, Optional, Tuple

from repro.checkers.caspec import CASpec
from repro.core.catrace import CAElement


class ImmediateSnapshotSpec(CASpec):
    """Block spec: state is the frozenset of (tid, value) pairs deposited."""

    def __init__(self, oid: str = "IS") -> None:
        super().__init__(oid)

    def initial(self) -> Hashable:
        return frozenset()

    def step(
        self, state: FrozenSet[Tuple[str, Any]], element: CAElement
    ) -> Optional[FrozenSet[Tuple[str, Any]]]:
        if element.oid != self.oid:
            return None
        block = set()
        for op in element.operations:
            if op.method != "write_snap" or len(op.args) != 1:
                return None
            if any(tid == op.tid for tid, _ in state):
                return None  # one-shot: each participant writes once
            block.add((op.tid, op.args[0]))
        if len(block) != len(element):
            return None
        union = frozenset(state | block)
        for op in element.operations:
            if op.value != (union,):
                return None  # every view = own block ∪ earlier blocks
        return union

"""Sequential FIFO queue specification (for the E7 cross-validation
suite; queues are the classic Herlihy–Wing linearizability example)."""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.checkers.seqspec import SequentialSpec
from repro.core.actions import Invocation, Operation


class QueueSpec(SequentialSpec):
    """Strict FIFO queue: state is the tuple of values, front first.

    ``initial`` is the preseeded content, front-first — pair with
    ``ManualMSQueue.seed``.
    """

    def __init__(self, oid: str = "Q", initial: Iterable[Any] = ()) -> None:
        super().__init__(oid)
        self._initial = tuple(initial)

    def initial(self) -> Hashable:
        return self._initial

    def apply(
        self, state: Tuple[Any, ...], op: Operation
    ) -> Optional[Tuple[Any, ...]]:
        if op.method == "enqueue" and len(op.args) == 1:
            if op.value == (True,):
                return state + (op.args[0],)
            return None
        if op.method == "dequeue" and not op.args:
            if op.value == (False, 0):
                return state if not state else None
            if (
                len(op.value) == 2
                and op.value[0] is True
                and state
                and state[0] == op.value[1]
            ):
                return state[1:]
            return None
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        if invocation.method == "enqueue":
            return [(True,)]
        if invocation.method == "dequeue":
            return [(False, 0)]
        return ()

"""The synchronous queue's concurrency-aware specification (§2, [22]).

A handoff queue completes operations only in matched pairs: every
CA-element is ``SQ.{(t, put(v) ▷ true), (t', take() ▷ (true, v))}`` with
``t ≠ t'``.  No singleton element is legal — a ``put`` that "completes"
without a concurrent ``take`` (or vice versa) is precisely the undesired
behaviour a sequential specification cannot exclude, mirroring the §3
argument for the exchanger.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.checkers.caspec import CASpec
from repro.core.actions import Invocation, Operation
from repro.core.catrace import CAElement


def is_handoff_pair(element: CAElement) -> bool:
    """Whether ``element`` pairs a successful put with the matching take."""
    if len(element) != 2:
        return False
    ops = sorted(element.operations, key=lambda op: op.method)
    put, take = ops if ops[0].method == "put" else (ops[1], ops[0])
    return (
        put.method == "put"
        and take.method == "take"
        and put.tid != take.tid
        and len(put.args) == 1
        and put.value == (True,)
        and take.value == (True, put.args[0])
    )


class SyncQueueSpec(CASpec):
    """CA-spec of the synchronous queue: handoff pairs only."""

    def __init__(self, oid: str = "SQ") -> None:
        super().__init__(oid)

    def initial(self) -> Hashable:
        return 0

    def step(self, state: Hashable, element: CAElement) -> Optional[Hashable]:
        if element.oid != self.oid:
            return None
        if is_handoff_pair(element):
            return state
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        return ()  # puts/takes never complete alone

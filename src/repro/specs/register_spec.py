"""Sequential specs of the register and counter (experiment E7).

These objects are *not* concurrency-aware — the singleton-adapter of
their sequential specs is their complete CA-spec, which validates §3's
observation that classic linearizability is the singleton special case
of CAL.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.checkers.seqspec import SequentialSpec
from repro.core.actions import Invocation, Operation


class RegisterSpec(SequentialSpec):
    """Atomic read/write register; state is the current value."""

    def __init__(self, oid: str = "R", initial_value: Any = 0) -> None:
        super().__init__(oid)
        self._initial_value = initial_value

    def initial(self) -> Hashable:
        return self._initial_value

    def apply(self, state: Hashable, op: Operation) -> Optional[Hashable]:
        if op.method == "read" and not op.args:
            if op.value == (state,):
                return state
            return None
        if op.method == "write" and len(op.args) == 1:
            if op.value == (None,):
                return op.args[0]
            return None
        return None

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        if invocation.method == "write":
            return [(None,)]
        return ()


class CounterSpec(SequentialSpec):
    """Fetch-and-increment counter; state is the current count."""

    def __init__(self, oid: str = "C", initial_value: int = 0) -> None:
        super().__init__(oid)
        self._initial_value = initial_value

    def initial(self) -> Hashable:
        return self._initial_value

    def apply(self, state: int, op: Operation) -> Optional[int]:
        if op.method == "increment" and not op.args:
            if op.value == (state,):
                return state + 1
            return None
        if op.method == "read" and not op.args:
            if op.value == (state,):
                return state
            return None
        return None

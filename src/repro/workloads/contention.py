"""Contention workloads for the throughput experiment (E10).

The paper motivates the elimination stack with Hendler et al.'s claim
that it "achieves high performance under high workloads by allowing
concurrent pairs of push and pop operations to eliminate each other and
thus reduce contention on the main stack" (§2.2).  The authors measured
wall-clock throughput on real multiprocessors.

**Substitution.**  Our substrate serializes atomic steps, so wall-clock
parallelism must be *simulated*: each thread carries a virtual clock;
performing an effect advances the acting thread's clock by that effect's
cost; threads run "in parallel" by always stepping the thread with the
smallest clock (a discrete-event simulation).  A run gives every thread
the same time horizon, and throughput is completed operations per 1000
time units *across all threads* — so more threads can raise throughput,
exactly as more cores do.

The cost model charges shared-memory coherence, the physical phenomenon
behind the paper's contention story: a successful CAS must own the cache
line (expensive), a *failed* CAS pays the ownership traffic and forces
the retry's re-read (most expensive), plain reads are cheap, and backoff
pauses simply burn time.  Under this model the three stacks reproduce the
published *shape*: the bare CAS-retry stack collapses as threads grow
(every retry bounces the single hot line), backoff flattens the collapse
by trading contention for idle time, and the elimination stack converts
colliding push/pop pairs into off-hot-path exchanges and keeps scaling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.objects.elimination_stack import EliminationStack
from repro.objects.retry_stack import RetryingStack
from repro.substrate.context import Ctx
from repro.substrate.program import Program
from repro.substrate.runtime import Runtime, World
from repro.substrate.schedulers import RandomScheduler

#: Effect costs in virtual time units (see module docstring).
DEFAULT_COSTS: Mapping[str, float] = {
    "read": 1.0,
    "write": 2.0,
    "cas_success": 6.0,
    "cas_failure": 12.0,
    "pause": 1.0,
    "bookkeeping": 0.0,
}

STACK_KINDS = ("treiber", "treiber-backoff", "elimination")


@dataclass
class ThroughputSample:
    """Result of one simulated throughput run."""

    kind: str
    threads: int
    horizon: float
    completed_ops: int
    eliminated_pairs: int
    cas_failures: int
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_ktime(self) -> float:
        """Completed operations per 1000 virtual time units (all threads)."""
        if self.horizon <= 0:
            return 0.0
        return 1000.0 * self.completed_ops / self.horizon


def _worker(stack: Any, values: Sequence[int]):
    """Endless alternation of push and pop; the horizon cuts the run."""

    def body(ctx: Ctx):
        index = 0
        while True:
            value = values[index % len(values)]
            index += 1
            yield from stack.push(ctx, value)
            yield from stack.pop(ctx)

    return body


def _build(kind: str, world: World, threads: int, slots: Optional[int]):
    if kind == "treiber":
        return RetryingStack(world, "LS"), "LS"
    if kind == "treiber-backoff":
        return RetryingStack(world, "LS", backoff_base=1, backoff_cap=32), "LS"
    if kind == "elimination":
        stack = EliminationStack(
            world,
            "ES",
            slots=slots if slots is not None else max(1, threads // 2),
            wait_rounds=8,
        )
        return stack, "ES"
    raise ValueError(f"unknown stack kind {kind!r}; expected {STACK_KINDS}")


def run_throughput(
    kind: str,
    threads: int,
    horizon: float = 3000.0,
    seed: int = 1,
    slots: Optional[int] = None,
    costs: Mapping[str, float] = DEFAULT_COSTS,
) -> ThroughputSample:
    """One virtual-time contention run; see the module docstring."""
    world = World()
    stack, oid = _build(kind, world, threads, slots)
    program = Program(world)
    tids = [f"t{i}" for i in range(1, threads + 1)]
    for index, tid in enumerate(tids, start=1):
        seed_values = [100 * index + k for k in range(8)]
        program.thread(tid, _worker(stack, seed_values))
    runtime = program.runtime(RandomScheduler(seed=seed))

    clocks = {tid: 0.0 for tid in tids}
    jitter = random.Random(seed * 7919 + 13)
    while True:
        enabled = set(runtime.enabled())
        live = [t for t in tids if t in enabled and clocks[t] < horizon]
        if not live:
            break
        tid = min(live, key=lambda t: clocks[t])
        before = dict(runtime.counters)
        runtime.step_thread(tid)
        delta = 0.0
        for key, count in runtime.counters.items():
            grew = count - before.get(key, 0)
            if grew:
                delta += grew * costs.get(key, 1.0)
        # Tiny jitter desynchronizes identical threads (lockstep artefacts).
        clocks[tid] += delta + 0.001 * jitter.random()

    history = runtime.world.history.project_object(oid)
    completed = sum(1 for span in history.spans() if not span.pending)
    eliminated = sum(
        1 for element in runtime.world.trace if len(element) == 2
    )
    return ThroughputSample(
        kind=kind,
        threads=threads,
        horizon=horizon,
        completed_ops=completed,
        eliminated_pairs=eliminated,
        cas_failures=runtime.counters.get("cas_failure", 0),
        counters=dict(runtime.counters),
    )


def throughput_sweep(
    thread_counts: Sequence[int],
    horizon: float = 3000.0,
    seeds: Sequence[int] = (1, 2, 3),
    kinds: Sequence[str] = STACK_KINDS,
    slots: Optional[int] = None,
) -> List[ThroughputSample]:
    """The full E10 sweep: every kind × thread-count × seed."""
    samples = []
    for kind in kinds:
        for threads in thread_counts:
            for seed in seeds:
                samples.append(
                    run_throughput(
                        kind, threads, horizon=horizon, seed=seed, slots=slots
                    )
                )
    return samples


def mean_ops_per_ktime(
    samples: Sequence[ThroughputSample],
) -> Dict[Tuple[str, int], float]:
    """Average throughput keyed by (kind, threads)."""
    sums: Dict[Tuple[str, int], List[float]] = {}
    for sample in samples:
        sums.setdefault((sample.kind, sample.threads), []).append(
            sample.ops_per_ktime
        )
    return {key: sum(vals) / len(vals) for key, vals in sums.items()}

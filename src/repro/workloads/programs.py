"""Reusable setup factories for verification drivers and benchmarks.

Each factory returns a ``setup(scheduler) -> Runtime`` function suitable
for :func:`repro.substrate.explore.explore_all` /
:func:`repro.checkers.verify.verify_cal`, plus (where useful) the object
metadata needed to build view functions.  Factories rebuild the entire
world on every call — required for stateless exploration replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.objects.dual_stack import DualStack
from repro.objects.elimination_stack import POP_SENTINEL, EliminationStack
from repro.objects.exchanger import Exchanger
from repro.objects.immediate_snapshot import ImmediateSnapshot
from repro.objects.registers import AtomicCounter, AtomicRegister
from repro.objects.ms_queue import ManualMSQueue
from repro.objects.sync_queue import SyncQueue
from repro.objects.treiber_stack import ManualTreiberStack, TreiberStack
from repro.substrate.program import Program, spawn
from repro.substrate.runtime import Runtime, World
from repro.substrate.schedulers import Scheduler

SetupFn = Callable[[Scheduler], Runtime]


def exchanger_program(
    values: Sequence[Any],
    oid: str = "E",
    wait_rounds: int = 1,
    monitors: Optional[Callable[[Exchanger, Program], None]] = None,
) -> SetupFn:
    """One thread per value, each performing a single ``exchange``.

    ``monitors(exchanger, program)``, if given, can attach rely/guarantee
    monitors to each fresh world (it is called once per replay).
    """

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        exchanger = Exchanger(world, oid, wait_rounds=wait_rounds)
        program = Program(world)
        for index, value in enumerate(values, start=1):
            program.thread(
                f"t{index}",
                lambda ctx, v=value: exchanger.exchange(ctx, v),
            )
        if monitors is not None:
            monitors(exchanger, program)
        return program.runtime(scheduler)

    return setup


@dataclass
class StackWorkload:
    """A per-thread script of stack operations.

    Each entry is a list of ``("push", v)`` / ``("pop",)`` steps run
    sequentially by one thread.
    """

    scripts: List[List[Tuple[Any, ...]]]

    def thread_count(self) -> int:
        return len(self.scripts)


def _stack_calls(obj: Any, script: List[Tuple[Any, ...]]):
    calls = []
    for step in script:
        if step[0] == "push":
            calls.append(lambda ctx, v=step[1]: obj.push(ctx, v))
        elif step[0] == "pop":
            calls.append(lambda ctx: obj.pop(ctx))
        else:
            raise ValueError(f"unknown stack step {step!r}")
    return calls


def elimination_stack_program(
    workload: StackWorkload,
    oid: str = "ES",
    slots: int = 1,
    max_attempts: Optional[int] = 2,
    monitors: Optional[Callable[[EliminationStack, Program], None]] = None,
) -> SetupFn:
    """Threads running scripted push/pop mixes on an elimination stack."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        stack = EliminationStack(
            world, oid, slots=slots, max_attempts=max_attempts
        )
        program = Program(world)
        for index, script in enumerate(workload.scripts, start=1):
            program.thread(f"t{index}", spawn(*_stack_calls(stack, script)))
        if monitors is not None:
            monitors(stack, program)
        return program.runtime(scheduler)

    return setup


def treiber_program(
    workload: StackWorkload,
    oid: str = "S",
) -> SetupFn:
    """Threads running scripted push/pop mixes on a bare central stack
    (operations may fail — Figure 2 semantics)."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        stack = TreiberStack(world, oid)
        program = Program(world)
        for index, script in enumerate(workload.scripts, start=1):
            program.thread(f"t{index}", spawn(*_stack_calls(stack, script)))
        return program.runtime(scheduler)

    return setup


def sync_queue_program(
    puts: Sequence[Any],
    takers: int,
    oid: str = "SQ",
    slots: int = 1,
    max_attempts: Optional[int] = 2,
) -> SetupFn:
    """``len(puts)`` putters and ``takers`` takers on a synchronous queue."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        queue = SyncQueue(
            world, oid, slots=slots, max_attempts=max_attempts
        )
        program = Program(world)
        for index, value in enumerate(puts, start=1):
            program.thread(
                f"p{index}", lambda ctx, v=value: queue.put(ctx, v)
            )
        for index in range(1, takers + 1):
            program.thread(f"c{index}", lambda ctx: queue.take(ctx))
        return program.runtime(scheduler)

    return setup


def snapshot_program(
    values: Sequence[Any],
    oid: str = "IS",
) -> SetupFn:
    """Each of ``len(values)`` participants performs one ``write_snap``."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        tids = [f"t{i}" for i in range(1, len(values) + 1)]
        snap = ImmediateSnapshot(world, oid, participants=tids)
        program = Program(world)
        for tid, value in zip(tids, values):
            program.thread(
                tid, lambda ctx, v=value: snap.write_snap(ctx, v)
            )
        return program.runtime(scheduler)

    return setup


def dual_stack_program(
    workload: StackWorkload,
    oid: str = "DS",
    max_attempts: Optional[int] = 4,
) -> SetupFn:
    """Threads running scripted push/pop mixes on a dual stack."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        stack = DualStack(world, oid, max_attempts=max_attempts)
        program = Program(world)
        for index, script in enumerate(workload.scripts, start=1):
            program.thread(f"t{index}", spawn(*_stack_calls(stack, script)))
        return program.runtime(scheduler)

    return setup


def register_program(
    writers: Sequence[Any],
    readers: int,
    oid: str = "R",
    initial: Any = 0,
) -> SetupFn:
    """Writers writing given values concurrently with ``readers`` readers."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        register = AtomicRegister(world, oid, initial=initial)
        program = Program(world)
        for index, value in enumerate(writers, start=1):
            program.thread(
                f"w{index}", lambda ctx, v=value: register.write(ctx, v)
            )
        for index in range(1, readers + 1):
            program.thread(f"r{index}", lambda ctx: register.read(ctx))
        return program.runtime(scheduler)

    return setup


def counter_program(
    incrementers: int,
    reads_per_thread: int = 0,
    oid: str = "C",
) -> SetupFn:
    """``incrementers`` threads each incrementing once (plus optional reads)."""

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        counter = AtomicCounter(world, oid)
        program = Program(world)
        for index in range(1, incrementers + 1):
            calls = [lambda ctx: counter.increment(ctx)]
            calls += [
                lambda ctx: counter.read(ctx) for _ in range(reads_per_thread)
            ]
            program.thread(f"t{index}", spawn(*calls))
        return program.runtime(scheduler)

    return setup


def manual_treiber_program(
    workload: StackWorkload,
    oid: str = "S",
    policy: str = "gc",
    seed_values: Sequence[Any] = (),
    max_attempts: Optional[int] = 8,
    memory_model: str = "sc",
) -> SetupFn:
    """Threads running scripted push/pop mixes on a manual-reclamation
    Treiber stack (retrying semantics; pop frees its cell).

    ``policy`` selects the heap's reclamation policy, ``seed_values``
    prepopulates the stack bottom-first (pair with
    ``StackSpec(initial=seed_values)``), and ``memory_model`` selects
    sc/tso execution.
    """

    def setup(scheduler: Scheduler) -> Runtime:
        world = World(policy=policy)
        stack = ManualTreiberStack(world, oid, max_attempts=max_attempts)
        stack.seed(seed_values)
        program = Program(world)
        for index, script in enumerate(workload.scripts, start=1):
            program.thread(f"t{index}", spawn(*_stack_calls(stack, script)))
        return program.runtime(scheduler, memory_model=memory_model)

    return setup


def manual_msqueue_program(
    scripts: Sequence[Sequence[Tuple[Any, ...]]],
    oid: str = "Q",
    policy: str = "gc",
    seed_values: Sequence[Any] = (),
    max_attempts: Optional[int] = 8,
    memory_model: str = "sc",
) -> SetupFn:
    """Threads running scripted enqueue/dequeue mixes on a
    manual-reclamation Michael–Scott queue (dequeue frees the retired
    dummy node).  ``seed_values`` prepopulates front-first (pair with
    ``QueueSpec(initial=seed_values)``)."""

    def _queue_calls(queue: Any, script: Sequence[Tuple[Any, ...]]):
        calls = []
        for step in script:
            if step[0] == "enqueue":
                calls.append(lambda ctx, v=step[1]: queue.enqueue(ctx, v))
            elif step[0] == "dequeue":
                calls.append(lambda ctx: queue.dequeue(ctx))
            else:
                raise ValueError(f"unknown queue step {step!r}")
        return calls

    def setup(scheduler: Scheduler) -> Runtime:
        world = World(policy=policy)
        queue = ManualMSQueue(world, oid, max_attempts=max_attempts)
        queue.seed(seed_values)
        program = Program(world)
        for index, script in enumerate(scripts, start=1):
            program.thread(f"t{index}", spawn(*_queue_calls(queue, script)))
        return program.runtime(scheduler, memory_model=memory_model)

    return setup


def store_buffer_litmus(memory_model: str = "tso") -> SetupFn:
    """The classic SB (store-buffer) litmus test as a register workload.

    Two threads each write their own register then read the other's;
    under sequential consistency at least one thread reads 1, while TSO
    admits the ``(0, 0)`` outcome (both writes parked in store buffers
    across both reads).  Thread results are the values read.
    """

    def setup(scheduler: Scheduler) -> Runtime:
        world = World()
        x = world.heap.ref("x", 0)
        y = world.heap.ref("y", 0)

        def writer_then_reader(own, other):
            def body(ctx):
                yield from ctx.write(own, 1)
                value = yield from ctx.read(other)
                return value

            return body

        program = Program(world)
        program.thread("t1", writer_then_reader(x, y))
        program.thread("t2", writer_then_reader(y, x))
        return program.runtime(scheduler, memory_model=memory_model)

    return setup

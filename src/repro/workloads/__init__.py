"""Client programs and workload generators.

* :mod:`repro.workloads.figure3` — the paper's program ``P`` and the
  histories ``H1``, ``H2``, ``H3`` of Figure 3.
* :mod:`repro.workloads.programs` — reusable setup factories for all the
  objects (exchanger duels, stack mixes, queue handoffs, …).
* :mod:`repro.workloads.synthetic` — synthetic histories/CA-traces for
  checker scaling experiments (E12).
* :mod:`repro.workloads.contention` — randomized contention workloads for
  the throughput experiment (E10).
"""

from repro.workloads.figure3 import (
    figure3_history_h1,
    figure3_history_h2,
    figure3_history_h3,
    figure3_history_h3_prefix,
    figure3_program,
)
from repro.workloads.programs import (
    counter_program,
    dual_stack_program,
    elimination_stack_program,
    exchanger_program,
    register_program,
    snapshot_program,
    sync_queue_program,
    treiber_program,
)

__all__ = [
    "counter_program",
    "dual_stack_program",
    "elimination_stack_program",
    "exchanger_program",
    "figure3_history_h1",
    "figure3_history_h2",
    "figure3_history_h3",
    "figure3_history_h3_prefix",
    "figure3_program",
    "register_program",
    "snapshot_program",
    "sync_queue_program",
    "treiber_program",
]

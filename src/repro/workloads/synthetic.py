"""Synthetic histories and CA-traces for checker-scaling experiments (E12).

These generate *known-good* (and known-bad) inputs of controllable size
so that checker cost can be measured as a function of history length and
concurrency width without paying for simulation.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.actions import Invocation, Operation, Response
from repro.core.catrace import (
    CAElement,
    CATrace,
    failed_exchange_element,
    swap_element,
)
from repro.core.history import History


def swap_chain_history(
    pairs: int, oid: str = "E", width: int = 2
) -> Tuple[History, CATrace]:
    """A history of ``pairs`` successive disjoint swaps plus its witness.

    Each round, ``width`` threads pair up in ``width // 2`` overlapping
    swaps; rounds are sequential.  Returns (history, agreeing CA-trace).
    """
    if width % 2:
        raise ValueError("width must be even")
    actions = []
    elements: List[CAElement] = []
    value = 0
    for round_index in range(pairs):
        round_actions_inv = []
        round_actions_res = []
        for pair_index in range(width // 2):
            t1 = f"t{round_index}.{2 * pair_index}"
            t2 = f"t{round_index}.{2 * pair_index + 1}"
            v1, v2 = value, value + 1
            value += 2
            round_actions_inv.append(Invocation(t1, oid, "exchange", (v1,)))
            round_actions_inv.append(Invocation(t2, oid, "exchange", (v2,)))
            round_actions_res.append(
                Response(t1, oid, "exchange", (True, v2))
            )
            round_actions_res.append(
                Response(t2, oid, "exchange", (True, v1))
            )
            elements.append(swap_element(oid, t1, v1, t2, v2))
        actions.extend(round_actions_inv)
        actions.extend(round_actions_res)
    return History(actions), CATrace(elements)


def failure_run_history(
    count: int, oid: str = "E"
) -> Tuple[History, CATrace]:
    """``count`` sequential failed exchanges by one thread."""
    actions = []
    elements = []
    for index in range(count):
        actions.append(Invocation("t1", oid, "exchange", (index,)))
        actions.append(Response("t1", oid, "exchange", (False, index)))
        elements.append(failed_exchange_element(oid, "t1", index))
    return History(actions), CATrace(elements)


def wide_overlap_history(width: int, oid: str = "E") -> History:
    """``width`` threads all overlapping: the even ones swap pairwise,
    odd one (if any) fails.  Worst case for the frontier-subset search."""
    actions = []
    responses = []
    for index in range(width):
        tid = f"t{index}"
        actions.append(Invocation(tid, oid, "exchange", (index,)))
    for index in range(0, width - 1, 2):
        a, b = f"t{index}", f"t{index + 1}"
        responses.append(Response(a, oid, "exchange", (True, index + 1)))
        responses.append(Response(b, oid, "exchange", (True, index)))
    if width % 2:
        tid = f"t{width - 1}"
        responses.append(Response(tid, oid, "exchange", (False, width - 1)))
    return History(actions + responses)


def random_register_history(
    operations: int,
    threads: int,
    oid: str = "R",
    seed: int = 0,
) -> History:
    """A random *valid* register history produced by simulating a real
    register under random interleaving of inv/lin/res phases."""
    rng = random.Random(seed)
    value = 0
    actions = []
    active: List[Tuple[str, str, Tuple, Tuple]] = []  # pending responses
    thread_free = {f"t{i}": True for i in range(1, threads + 1)}
    emitted = 0
    while emitted < operations or active:
        can_start = emitted < operations and any(thread_free.values())
        if active and (not can_start or rng.random() < 0.5):
            index = rng.randrange(len(active))
            tid, method, args, value_tuple = active.pop(index)
            actions.append(Response(tid, oid, method, value_tuple))
            thread_free[tid] = True
            continue
        tid = rng.choice([t for t, free in thread_free.items() if free])
        thread_free[tid] = False
        emitted += 1
        if rng.random() < 0.5:
            new_value = rng.randrange(10)
            actions.append(Invocation(tid, oid, "write", (new_value,)))
            value = new_value  # linearize at invocation for validity
            active.append((tid, "write", (new_value,), (None,)))
        else:
            actions.append(Invocation(tid, oid, "read", ()))
            active.append((tid, "read", (), (value,)))
    return History(actions)


def corrupted(history: History, oid: str = "E") -> History:
    """Flip one response value to make the history invalid (negative
    test inputs for the checkers)."""
    actions = list(history.actions)
    for index in range(len(actions) - 1, -1, -1):
        action = actions[index]
        if action.is_response and action.oid == oid:
            bad_value = tuple(
                (v + 1) if isinstance(v, int) and not isinstance(v, bool)
                else v
                for v in action.value
            )
            if bad_value == action.value:
                bad_value = action.value + (999,)
            actions[index] = Response(
                action.tid, action.oid, action.method, bad_value
            )
            return History(actions)
    raise ValueError("history has no response to corrupt")

"""Figure 3: the client program ``P`` and the histories ``H1``–``H3``.

``P  =  t1: exchg(3)  ‖  t2: exchg(4)  ‖  t3: exchg(7)``

* ``H1`` — the concurrent history in which t1 and t2 swap (3 ↔ 4) with
  fully overlapping operations while t3 fails; *can* occur when P runs.
* ``H2`` — the same outcome presented as a CA-history: the t1/t2
  operations overlap pairwise, t3's failure is sequential after them;
  also a possible behaviour of P.
* ``H3`` — a *sequential* "explanation" of H1: t1's whole operation,
  then t2's, then t3's.  H3 itself cannot occur when P runs, and using
  it as a specification history is what §3 shows to be unacceptable —
  its prefix ``H3'`` (t1 exchanges 3 for 4 *alone*) would have to be in
  the prefix-closed specification too.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.actions import Invocation, Response
from repro.core.history import History
from repro.objects.exchanger import Exchanger
from repro.substrate.program import Program
from repro.substrate.runtime import Runtime, World
from repro.substrate.schedulers import Scheduler


def figure3_program(scheduler: Scheduler, oid: str = "E") -> Runtime:
    """Setup factory for ``P``: three threads exchanging 3, 4 and 7."""
    world = World()
    exchanger = Exchanger(world, oid)
    program = Program(world)
    program.thread("t1", lambda ctx: exchanger.exchange(ctx, 3))
    program.thread("t2", lambda ctx: exchanger.exchange(ctx, 4))
    program.thread("t3", lambda ctx: exchanger.exchange(ctx, 7))
    return program.runtime(scheduler)


def _inv(tid: str, value: int, oid: str) -> Invocation:
    return Invocation(tid, oid, "exchange", (value,))


def _res(tid: str, ok: bool, value, oid: str) -> Response:
    return Response(tid, oid, "exchange", (ok, value))


def figure3_history_h1(oid: str = "E") -> History:
    """``H1``: t1/t2 overlap and swap; t3 overlaps both and fails."""
    return History(
        [
            _inv("t1", 3, oid),
            _inv("t2", 4, oid),
            _inv("t3", 7, oid),
            _res("t1", True, 4, oid),
            _res("t2", True, 3, oid),
            _res("t3", False, 7, oid),
        ]
    )


def figure3_history_h2(oid: str = "E") -> History:
    """``H2``: the CA-history — t1/t2 overlap pairwise, then t3 alone."""
    return History(
        [
            _inv("t1", 3, oid),
            _inv("t2", 4, oid),
            _res("t1", True, 4, oid),
            _res("t2", True, 3, oid),
            _inv("t3", 7, oid),
            _res("t3", False, 7, oid),
        ]
    )


def figure3_history_h3(oid: str = "E") -> History:
    """``H3``: the undesired sequential explanation of ``H1``."""
    return History(
        [
            _inv("t1", 3, oid),
            _res("t1", True, 4, oid),
            _inv("t2", 4, oid),
            _res("t2", True, 3, oid),
            _inv("t3", 7, oid),
            _res("t3", False, 7, oid),
        ]
    )


def figure3_history_h3_prefix(oid: str = "E") -> History:
    """``H3'``: the prefix of ``H3`` in which t1 exchanges *alone* —
    the behaviour no client wants, forced on any prefix-closed
    sequential specification that admits ``H3``."""
    return History(
        [
            _inv("t1", 3, oid),
            _res("t1", True, 4, oid),
        ]
    )

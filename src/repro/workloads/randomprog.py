"""Small random substrate programs for cross-engine conformance testing.

The DPOR/sleep-set/unreduced engines must agree on *every* program, not
just the curated workloads — so the conformance suite
(``tests/test_dpor.py``) and the independence property tests
(``tests/test_independence.py``) draw programs from this generator:
2–3 threads running short random scripts of reads, writes, CASes,
pauses, value choices and history appends over a couple of shared
cells, optionally under a random fault plan.

Everything is a pure function of ``seed`` (via ``random.Random``, whose
sequence is stable across Python versions), so a failing seed is a
complete reproducer.  Programs are deliberately tiny: the unreduced
engine must be able to enumerate them exhaustively, since it is the
ground truth the reduced engines are compared against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.substrate.faults import CrashThread, FaultPlan, StallThread
from repro.substrate.program import Program
from repro.substrate.runtime import Runtime, World
from repro.substrate.schedulers import Scheduler

#: Script operation kinds, with rough weights favouring shared-memory
#: traffic (the interesting case for reduction) over control noise.
_OPS = (
    "write",
    "write",
    "read",
    "read",
    "cas",
    "invoke",
    "pause",
    "choose",
)


@dataclass(frozen=True)
class RandomProgram:
    """One generated program: a setup factory plus its description."""

    seed: int
    memory_model: str
    threads: int
    cells: int
    scripts: Tuple[Tuple[Tuple[str, int, int], ...], ...]
    faults: Optional[FaultPlan]

    def setup(self, scheduler: Scheduler) -> Runtime:
        world = World()
        refs = [
            world.heap.ref(f"c{index}", 0) for index in range(self.cells)
        ]
        program = Program(world)
        for index, script in enumerate(self.scripts):
            program.thread(f"t{index}", _script_body(script, refs))
        runtime = program.runtime(
            scheduler, memory_model=self.memory_model
        )
        if self.faults is not None:
            runtime.inject(self.faults)
        return runtime

    def describe(self) -> str:
        ops = sum(len(script) for script in self.scripts)
        fault = f" faults={self.faults!r}" if self.faults else ""
        return (
            f"seed={self.seed} {self.memory_model} threads={self.threads} "
            f"cells={self.cells} ops={ops}{fault}"
        )


def _script_body(script: Sequence[Tuple[str, int, int]], refs):
    def body(ctx):
        out: List[object] = []
        for op, cell, value in script:
            ref = refs[cell]
            if op == "write":
                yield from ctx.write(ref, value)
            elif op == "read":
                out.append((yield from ctx.read(ref)))
            elif op == "cas":
                out.append((yield from ctx.cas(ref, 0, value)))
            elif op == "invoke":
                yield from ctx.invoke("R", "note", (cell, value))
            elif op == "pause":
                yield from ctx.pause("rand")
            else:  # choose
                out.append((yield from ctx.choose((0, value))))
        return tuple(out)

    return body


def random_program(
    seed: int,
    memory_model: str = "sc",
    with_faults: bool = False,
) -> RandomProgram:
    """Generate one small program, deterministically from ``seed``.

    ``with_faults`` adds a crash or stall of one thread at a small step
    index (per-thread indexing, so the fault commutes with the schedule
    exactly as the curated fault plans do).  Sizes are tuned so the
    *unreduced* schedule space stays enumerable — a few hundred to a
    few thousand runs.
    """
    rng = random.Random(seed)
    threads = rng.choice((2, 2, 3))
    cells = rng.choice((1, 2))
    # Under TSO every write adds a flush pseudo-step, so scripts must be
    # shorter to keep the unreduced enumeration tractable (a 3-thread
    # 6-op program exceeds a million TSO interleavings).
    if memory_model == "tso":
        length = 2 if threads == 2 else 1
    else:
        length = rng.randint(2, 3) if threads == 2 else 2
    scripts = []
    for _ in range(threads):
        script = tuple(
            (rng.choice(_OPS), rng.randrange(cells), rng.randint(1, 3))
            for _ in range(length)
        )
        scripts.append(script)
    faults: Optional[FaultPlan] = None
    if with_faults:
        victim = rng.randrange(threads)
        at_step = rng.randrange(2)
        fault_cls = rng.choice((CrashThread, StallThread))
        faults = FaultPlan.of(fault_cls(f"t{victim}", at_step))
    return RandomProgram(
        seed=seed,
        memory_model=memory_model,
        threads=threads,
        cells=cells,
        scripts=tuple(scripts),
        faults=faults,
    )


__all__ = ["RandomProgram", "random_program"]

"""``repro.search`` — feedback-guided schedule search.

The fuzz drivers historically drew schedules uniformly at random and the
coverage layer (:mod:`repro.obs.coverage`) collected fingerprints that
were never fed back.  This package closes the loop with an AFL-style
greybox engine over *schedule prefixes*:

* :mod:`repro.search.corpus` — :class:`ScheduleCorpus`, the store of
  "interesting" prefixes (those that minted new coverage fingerprints)
  with a power/energy schedule that spends mutation budget on entries
  whose coverage yield is still climbing;
* :mod:`repro.search.greybox` — the mutation operators
  (splice/extend/perturb/truncate) and :class:`GreyboxEngine`, the
  propose/observe loop the fuzz drivers call behind
  ``guidance="greybox"``;
* :mod:`repro.search.rng` — named per-purpose RNG streams derived from
  the campaign seed, so mutation draws can never perturb the schedule
  or fault streams that pinned-seed regressions depend on.

Everything here is seed-deterministic: a greybox campaign is a pure
function of its seed range (plus its warm-start corpus), and every
corpus-derived failure carries its full decision schedule, so it
replays and shrinks exactly like a uniform one.  ``docs/search.md``
documents the design end to end.
"""

from repro.search.corpus import CorpusEntry, ScheduleCorpus
from repro.search.greybox import (
    MUTATION_OPS,
    GreyboxEngine,
    mutate_prefix,
)
from repro.search.rng import named_stream, stream_label

__all__ = [
    "CorpusEntry",
    "GreyboxEngine",
    "MUTATION_OPS",
    "ScheduleCorpus",
    "mutate_prefix",
    "named_stream",
    "stream_label",
]

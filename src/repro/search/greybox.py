"""Greybox schedule-prefix fuzzing: mutation operators + engine.

The engine implements the AFL loop at scheduler-decision granularity:

1. :meth:`GreyboxEngine.propose` — for each campaign seed, either draw
   a fresh uniform schedule (exploration) or pick a corpus entry by
   energy and mutate its prefix (exploitation).  Every draw comes from
   the ``mutation`` named stream (:func:`repro.search.rng.named_stream`)
   derived from that seed, so proposals are a pure function of
   ``(corpus state, seed)`` and never touch the schedule or fault
   streams.
2. The fuzz driver replays the proposed prefix (clamped modulo each
   decision's arity) and continues with the seed's usual random tail —
   :class:`repro.substrate.schedulers.PrefixRandomScheduler` — logging
   the *full* decision list, so recorded failures replay and shrink
   exactly like uniform ones.
3. :meth:`GreyboxEngine.observe` — after the run, the engine consults
   its own private :class:`~repro.obs.coverage.CoverageTracker`; runs
   that minted a new *semantic* fingerprint (history digest or history
   shape) donate their leading decisions to the corpus and credit the
   parent entry's ``hits``.  Schedule-prefix fingerprints are
   deliberately excluded from the novelty signal: under biased random
   sampling nearly every run mints a fresh prefix digest, which would
   flood the corpus with undistinguished entries and flatten the energy
   schedule into uniform replay.
4. :meth:`GreyboxEngine.record_failure` — the drivers feed verdict
   failures back with a large energy bonus and the *full* schedule (not
   just the leading decisions).  Mutations of a complete failing
   schedule re-trigger the failure at very high rates (truncations
   keep the corruption pinned; single-slot perturbs usually preserve
   it), so a corpus carrying a failure entry — e.g. warm-started from
   the campaign store's ``corpus`` table — re-finds the bug within a
   handful of runs where a cold uniform campaign needs hundreds.  This
   is the payoff measured by ``bench_e21_guided_search``.

The engine owns its novelty tracker precisely so that campaign-level
coverage collection (``coverage=`` on the drivers) stays optional and
observation-only: guidance behaves identically whether or not the
caller is also recording coverage.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.obs.coverage import CoverageTracker
from repro.search.corpus import CorpusEntry, ScheduleCorpus
from repro.search.rng import named_stream

#: Mutation operators, in the order the mutation stream chooses among.
MUTATION_OPS = ("truncate", "perturb", "extend", "splice")

#: Default length of the schedule prefix donated to the corpus.
DEFAULT_PREFIX_LEN = 12

#: Fraction of seeds that ignore the corpus and explore uniformly.
DEFAULT_EXPLORE_RATIO = 0.25

#: Exclusive upper bound for freshly-drawn decision indices.  Replay
#: clamps modulo arity, so this only shapes the draw distribution.
DEFAULT_MAX_VALUE = 4

#: Energy bonus a verdict failure's corpus entry starts with.  Failing
#: schedules are the highest-value mutation bases (their neighbourhood
#: re-triggers the failure at high probability), so they should absorb
#: most of the budget until their saturation curve decays.
FAILURE_ENERGY = 8


def mutate_prefix_op(
    rng: random.Random,
    prefix: Sequence[int],
    donor: Sequence[int],
    max_value: int = DEFAULT_MAX_VALUE,
) -> Tuple[str, Tuple[int, ...]]:
    """Like :func:`mutate_prefix`, also naming the operator applied.

    Returns ``(op, mutated)`` where ``op`` is the *effective* operator —
    a degenerate ``truncate``/``perturb``/``splice`` that fell back
    reports ``"extend"`` — so provenance telemetry attributes outcomes
    to what actually ran.  The rng draw sequence is identical to
    :func:`mutate_prefix`.
    """
    base = tuple(int(d) for d in prefix)
    op = rng.choice(MUTATION_OPS)
    if op == "truncate" and len(base) > 1:
        cut = rng.randrange(1, len(base))
        return op, base[:cut]
    if op == "perturb" and base:
        slot = rng.randrange(len(base))
        return op, base[:slot] + (rng.randrange(max_value),) + base[slot + 1 :]
    if op == "splice" and base and donor:
        head = rng.randrange(1, len(base) + 1)
        tail = rng.randrange(len(donor) + 1)
        return op, base[:head] + tuple(int(d) for d in donor)[tail:]
    # extend (also the fallback for degenerate truncate/perturb/splice)
    grown = base
    for _ in range(rng.randrange(1, 4)):
        grown += (rng.randrange(max_value),)
    return "extend", grown


def mutate_prefix(
    rng: random.Random,
    prefix: Sequence[int],
    donor: Sequence[int],
    max_value: int = DEFAULT_MAX_VALUE,
) -> Tuple[int, ...]:
    """Apply one mutation operator chosen by ``rng`` to ``prefix``.

    ``donor`` supplies the tail for ``splice``; all indices are drawn
    from ``rng`` only, so the result is a pure function of the inputs.
    Degenerate cases (empty prefixes) fall back to ``extend`` so the
    operator always returns a non-empty prefix.
    """
    return mutate_prefix_op(rng, prefix, donor, max_value)[1]


class GreyboxEngine:
    """Propose/observe loop the fuzz drivers call under ``guidance="greybox"``."""

    __slots__ = (
        "corpus",
        "prefix_len",
        "explore_ratio",
        "max_value",
        "ledger",
        "_novelty",
        "_parent",
        "_pending_op",
        "proposed",
        "mutated",
    )

    def __init__(
        self,
        corpus: Optional[ScheduleCorpus] = None,
        prefix_len: int = DEFAULT_PREFIX_LEN,
        explore_ratio: float = DEFAULT_EXPLORE_RATIO,
        max_value: int = DEFAULT_MAX_VALUE,
        ledger=None,
    ) -> None:
        self.corpus = corpus if corpus is not None else ScheduleCorpus()
        self.prefix_len = prefix_len
        self.explore_ratio = explore_ratio
        self.max_value = max_value
        self.ledger = ledger  # optional ExplorationLedger (provenance)
        self._novelty = CoverageTracker()
        self._parent: Optional[CorpusEntry] = None
        self._pending_op: Optional[str] = None
        self.proposed = 0  # seeds that got a mutated prefix
        self.mutated = 0  # mutations derived in total (== proposed)

    def propose(self, seed: int) -> Optional[List[int]]:
        """Return a mutated prefix for ``seed``, or None for a uniform draw."""
        self._parent = None
        self._pending_op = None
        if not len(self.corpus):
            return None
        rng = named_stream(seed, "mutation")
        if rng.random() < self.explore_ratio:
            return None
        entry = self.corpus.pick(rng)
        donor = self.corpus.pick(rng)
        if self.ledger is not None:
            # Energy at pick time, before this pick decays it.
            self.ledger.record_pick(entry.energy)
        op, prefix = mutate_prefix_op(
            rng, entry.prefix, donor.prefix, self.max_value
        )
        entry.children += 1
        self._parent = entry
        self._pending_op = op
        self.proposed += 1
        self.mutated += 1
        return list(prefix)

    def observe(self, position: int, run: Any, oid: Optional[str] = None) -> bool:
        """Feed one finished run back; returns True when it minted coverage.

        ``run`` is a :class:`~repro.substrate.runtime.RunResult` whose
        ``schedule`` the driver filled in.  Minting a new semantic
        fingerprint (history digest or shape) in the engine's private
        tracker adds the run's leading decisions to the corpus and
        credits the proposing entry.
        """
        tracker = self._novelty
        histories_before = len(tracker.histories)
        shapes_before = len(tracker.history_shapes)
        tracker.observe_run(position, run.schedule, run.history, oid=oid)
        minted = (
            len(tracker.histories) > histories_before
            or len(tracker.history_shapes) > shapes_before
        )
        if self.ledger is not None:
            if self._pending_op is not None:
                self.ledger.record_mutation(self._pending_op, minted)
            if minted:
                self.ledger.record_admission(
                    "history"
                    if len(tracker.histories) > histories_before
                    else "shape"
                )
            else:
                self.ledger.record_rejection("duplicate")
        if minted:
            self.corpus.add(tuple(run.schedule[: self.prefix_len]))
            if self._parent is not None:
                self._parent.hits += 1
        self._parent = None
        self._pending_op = None
        return minted

    def record_failure(self, run: Any) -> Optional[CorpusEntry]:
        """Donate a verdict failure's *full* schedule at high energy.

        Returns the new corpus entry, or None when the schedule was
        already donated (a re-found failure keeps its original entry).
        """
        entry = self.corpus.add(tuple(run.schedule))
        if entry is not None:
            entry.hits += FAILURE_ENERGY
        if self.ledger is not None:
            self.ledger.count(
                "greybox.failure_donated"
                if entry is not None
                else "greybox.failure_duplicate"
            )
        return entry

    def stats(self) -> dict:
        """Counters for the campaign report / trace stream."""
        return {
            "corpus_size": len(self.corpus),
            "proposed": self.proposed,
            "novel": len(self._novelty.histories),
        }


__all__ = [
    "DEFAULT_EXPLORE_RATIO",
    "DEFAULT_MAX_VALUE",
    "DEFAULT_PREFIX_LEN",
    "FAILURE_ENERGY",
    "GreyboxEngine",
    "MUTATION_OPS",
    "mutate_prefix",
    "mutate_prefix_op",
]

"""Named per-purpose RNG streams derived from the campaign seed.

The fuzz drivers historically consumed randomness from two places, and
pinned-seed regressions (tests, recorded counterexamples, CI smoke
jobs) depend on both staying byte-identical forever:

* the **schedule** stream — ``random.Random(seed)`` inside
  :class:`repro.substrate.schedulers.RandomScheduler`;
* the **fault** stream — ``random.Random(f"fault-campaign:{seed}")``
  inside :meth:`repro.substrate.faults.FaultCampaign.plan`.

Greybox guidance adds a third consumer: mutation choice (which corpus
entry to mutate, which operator, where to cut).  If mutation draws
shared either existing stream, enabling ``guidance="greybox"`` — or
merely changing how many mutations an engine tries — would shift every
subsequent draw and silently re-key the pinned-seed universe.  This
module therefore names each purpose and derives an *independent*
``random.Random`` per ``(seed, purpose)`` pair:

======== ==========================  =======================================
purpose  label                       compatibility constraint
======== ==========================  =======================================
schedule ``seed`` (bare int)         must equal ``RandomScheduler`` seeding
fault    ``"fault-campaign:{seed}"`` must equal ``FaultCampaign.plan``
mutation ``"mutation:{seed}"``       new in this release
corpus   ``"corpus:{seed}"``         new in this release (reserved)
======== ==========================  =======================================

The first two labels are frozen: ``tests/test_search_greybox.py`` pins
them against the substrate's own draws, so any accidental divergence is
a test failure, not a silent regression.
"""

from __future__ import annotations

import random
from typing import Union

# Purposes with a frozen, historically-significant seeding label.  The
# fault label must stay byte-identical to the literal in
# ``FaultCampaign.plan``; the schedule purpose seeds with the bare int
# exactly like ``RandomScheduler(seed=...)``.
FAULT_LABEL = "fault-campaign:{seed}"

_KNOWN_PURPOSES = ("schedule", "fault", "mutation", "corpus")


def stream_label(seed: int, purpose: str) -> Union[int, str]:
    """Return the ``random.Random`` seeding value for a named stream."""
    if purpose == "schedule":
        return seed
    if purpose == "fault":
        return FAULT_LABEL.format(seed=seed)
    return f"{purpose}:{seed}"


def named_stream(seed: int, purpose: str) -> random.Random:
    """Build the independent RNG for ``purpose`` under campaign ``seed``.

    Unknown purposes are allowed (they hash their name into the label),
    but the canonical set is ``schedule``/``fault``/``mutation``/
    ``corpus`` — stick to those so draws stay attributable.
    """
    return random.Random(stream_label(seed, purpose))


__all__ = ["FAULT_LABEL", "named_stream", "stream_label"]

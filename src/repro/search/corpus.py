"""Corpus of interesting schedule prefixes with an energy schedule.

A :class:`ScheduleCorpus` holds the prefixes of schedules that minted
new coverage fingerprints (see :class:`repro.search.greybox.GreyboxEngine`
for the observation loop).  Each entry tracks how many mutations were
derived from it (``children``) and how many of those minted further
coverage (``hits``); the **energy** of an entry — ``(hits + 1) /
(children + 1)`` — is the empirical estimate that its neighbourhood of
the schedule space is still yielding novelty.  Entries whose saturation
curve has flattened (many children, few hits) decay toward the floor
and stop absorbing mutation budget, mirroring the AFL power-schedule
idea at schedule-prefix granularity.

The corpus is deliberately plain data: entries are ``(prefix, children,
hits)`` triples, ``snapshot()``/``from_snapshot()`` round-trip through
JSON-able dicts (this is what the campaign store persists in its
``corpus`` table), and ``merge()`` folds partition results by summing
counters per prefix — the same offset-free commutative shape the
coverage tracker uses, so parallel workers can evolve private copies
that fold back deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Prefix = Tuple[int, ...]


class CorpusEntry:
    """One interesting schedule prefix plus its mutation ledger."""

    __slots__ = ("prefix", "children", "hits")

    def __init__(self, prefix: Sequence[int], children: int = 0, hits: int = 0):
        self.prefix: Prefix = tuple(int(d) for d in prefix)
        self.children = children
        self.hits = hits

    @property
    def energy(self) -> float:
        """Mutation-budget weight; decays as the entry stops minting coverage."""
        return (self.hits + 1) / (self.children + 1)

    def snapshot(self) -> Dict[str, object]:
        return {
            "prefix": list(self.prefix),
            "children": self.children,
            "hits": self.hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorpusEntry(prefix={list(self.prefix)!r}, "
            f"children={self.children}, hits={self.hits})"
        )


class ScheduleCorpus:
    """Ordered, deduplicated store of interesting schedule prefixes.

    Insertion order is part of the contract: ``pick`` iterates entries
    in insertion order with deterministic weighted selection, so two
    campaigns that grow the corpus identically draw identically.
    """

    __slots__ = ("_entries", "_index")

    def __init__(self, entries: Optional[Iterable[CorpusEntry]] = None):
        self._entries: List[CorpusEntry] = []
        self._index: Dict[Prefix, CorpusEntry] = {}
        for entry in entries or ():
            existing = self._index.get(entry.prefix)
            if existing is None:
                self._entries.append(entry)
                self._index[entry.prefix] = entry
            else:
                existing.children += entry.children
                existing.hits += entry.hits

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def add(self, prefix: Sequence[int]) -> Optional[CorpusEntry]:
        """Insert ``prefix`` if novel; return the new entry (or None)."""
        key = tuple(int(d) for d in prefix)
        if not key or key in self._index:
            return None
        entry = CorpusEntry(key)
        self._entries.append(entry)
        self._index[key] = entry
        return entry

    def pick(self, rng: random.Random) -> CorpusEntry:
        """Energy-weighted deterministic draw over the entries."""
        if not self._entries:
            raise IndexError("pick from an empty corpus")
        total = 0.0
        for entry in self._entries:
            total += entry.energy
        point = rng.random() * total
        acc = 0.0
        for entry in self._entries:
            acc += entry.energy
            if point < acc:
                return entry
        return self._entries[-1]

    def merge(self, other: "ScheduleCorpus") -> "ScheduleCorpus":
        """Fold another corpus into this one (sum counters per prefix)."""
        for entry in other:
            existing = self._index.get(entry.prefix)
            if existing is None:
                self.add(entry.prefix)
                existing = self._index[entry.prefix]
            existing.children += entry.children
            existing.hits += entry.hits
        return self

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-able dump in insertion order (what the store persists)."""
        return [entry.snapshot() for entry in self._entries]

    @classmethod
    def from_snapshot(cls, payload: Iterable[Dict[str, object]]) -> "ScheduleCorpus":
        entries = [
            CorpusEntry(
                item.get("prefix", ()),  # type: ignore[arg-type]
                children=int(item.get("children", 0)),  # type: ignore[arg-type]
                hits=int(item.get("hits", 0)),  # type: ignore[arg-type]
            )
            for item in payload
        ]
        return cls(entries)


__all__ = ["CorpusEntry", "Prefix", "ScheduleCorpus"]

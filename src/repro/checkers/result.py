"""Check results shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.catrace import CATrace
from repro.core.history import History


@dataclass
class CheckResult:
    """Outcome of checking one history against one specification.

    ``witness`` is the explaining CA-trace (for CAL/set-lin checks) or the
    singleton CA-trace of the linearization order (for classic checks);
    ``completion`` is the completed history the witness explains.
    ``nodes`` counts search-tree nodes visited — the cost measure used by
    the scaling and ablation experiments.
    """

    ok: bool
    witness: Optional[CATrace] = None
    completion: Optional[History] = None
    nodes: int = 0
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        verdict = "OK" if self.ok else f"FAIL({self.reason})"
        return f"CheckResult({verdict}, nodes={self.nodes})"

"""Check results and robustness budgets shared by all checkers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.catrace import CATrace
from repro.core.history import History
from repro.substrate.errors import BudgetExceeded


class Verdict(Enum):
    """Three-valued checker outcome.

    ``OK``/``FAIL`` are definitive; ``UNKNOWN`` means the checker ran
    out of budget (search nodes, wall clock) before deciding — the
    graceful-degradation answer for factorial search spaces.  An
    ``UNKNOWN`` is never a pass: callers must either retry with a larger
    budget or fall back to a cheaper check (witness validation).
    """

    OK = "ok"
    FAIL = "fail"
    UNKNOWN = "unknown"


@dataclass
class SearchBudget:
    """Node/deadline budget for one checker search.

    ``charge()`` is called once per search-tree node; exceeding either
    bound raises :class:`~repro.substrate.errors.BudgetExceeded`, which
    the checker converts into an ``UNKNOWN`` result at its API boundary.
    The deadline is only polled every 256 nodes, keeping the common case
    one integer compare.
    """

    node_budget: Optional[int] = None
    deadline: Optional[float] = None  # wall-clock seconds
    nodes: int = 0
    _started_at: Optional[float] = field(default=None, repr=False)

    def charge(self) -> None:
        self.nodes += 1
        if self.node_budget is not None and self.nodes > self.node_budget:
            raise BudgetExceeded(
                f"node budget exhausted ({self.node_budget} nodes)"
            )
        if self.deadline is not None and self.nodes % 256 == 0:
            if self._started_at is None:
                self._started_at = time.monotonic()
            elif time.monotonic() - self._started_at >= self.deadline:
                raise BudgetExceeded(f"deadline exceeded ({self.deadline}s)")


@dataclass
class CheckResult:
    """Outcome of checking one history against one specification.

    ``witness`` is the explaining CA-trace (for CAL/set-lin checks) or the
    singleton CA-trace of the linearization order (for classic checks);
    ``completion`` is the completed history the witness explains.
    ``nodes`` counts search-tree nodes visited — the cost measure used by
    the scaling and ablation experiments.

    ``verdict`` refines the boolean: ``ok=True`` ⇔ ``Verdict.OK``, while
    ``ok=False`` splits into a definitive ``FAIL`` and a budget-starved
    ``UNKNOWN`` (see :class:`Verdict`).
    """

    ok: bool
    witness: Optional[CATrace] = None
    completion: Optional[History] = None
    nodes: int = 0
    reason: str = ""
    verdict: Optional[Verdict] = None

    def __post_init__(self) -> None:
        if self.verdict is None:
            self.verdict = Verdict.OK if self.ok else Verdict.FAIL

    @property
    def unknown(self) -> bool:
        return self.verdict is Verdict.UNKNOWN

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        if self.ok:
            verdict = "OK"
        elif self.unknown:
            verdict = f"UNKNOWN({self.reason})"
        else:
            verdict = f"FAIL({self.reason})"
        return f"CheckResult({verdict}, nodes={self.nodes})"

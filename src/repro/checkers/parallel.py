"""Parallel campaign runner: fan fuzz seed ranges and explore shards
across ``multiprocessing`` workers.

The searches themselves are deterministic per input (a fuzz run is a
pure function of its seed; an explore shard is a pure function of its
pinned prefix), so parallelism is a pure partitioning problem:

* **Fuzz campaigns** (:func:`fuzz_cal_parallel`,
  :func:`fuzz_linearizability_parallel`) split the seed sequence into
  contiguous chunks — one per worker — run each chunk with shrinking
  disabled, and merge the per-chunk :class:`~repro.checkers.fuzz.FuzzReport`
  tallies.  Failures keep their position in the original seed order, so
  the *first* failure is identical to the sequential runner's first
  failure regardless of worker count; it is then re-run and shrunk **in
  the parent** through the exact sequential code path
  (:func:`~repro.checkers.fuzz.fuzz_cal` on that single seed), which
  also re-establishes the sequential report's shrunk schedule.

* **Explore campaigns** (:func:`explore_parallel`) shard the schedule
  space by the first decision point: a probe run discovers its arity,
  then each worker enumerates one ``pin_prefix=[k]`` subtree
  (:func:`~repro.substrate.explore.explore_all`).  Concatenating shard
  results in pin order reproduces exactly the sequential enumeration
  order, so downstream consumers cannot tell the difference.

**Budget propagation.**  Campaigns take a ``deadline`` (seconds); the
parent converts it to an absolute ``time.monotonic()`` instant that is
valid across ``fork``, and every worker stops starting new work once it
passes (fuzz seeds not run are counted ``skipped``; explore shards trip
their :class:`~repro.substrate.explore.ExploreBudget`).  Run/step budgets
apply per shard — a shared counter would serialize the workers.

**Fault tolerance.**  :func:`_map_forked` is a supervisor loop, not a
fire-and-collect pool: a worker that *dies* without delivering a result
(SIGKILL, OOM, segfault) is retried with exponential backoff up to
``max_retries`` times, and a task whose workers keep dying is
**quarantined** — it yields a :class:`WorkerFailure` sentinel instead of
aborting the campaign, and the fuzz runners convert the lost chunk into
explicit ``skipped`` seeds (plus a ``report.quarantined`` entry) so the
loss is never silent.  A Python exception *inside* a task is different:
it is deterministic, so it still aborts — now with the worker's full
traceback.  ``task_timeout`` bounds any single attempt; after the
campaign deadline (plus a grace period) hung workers are killed and
their tasks quarantined, salvaging every completed partial.

**Checkpointing.**  The fuzz runners accept a ``checkpoint`` writer
(see :class:`repro.store.checkpoint.CheckpointWriter`): with
``checkpoint_every`` the seed sequence is chunked by that count instead
of per worker, each finished chunk's partial report is persisted as it
completes, and ``completed`` (chunk index → restored partial) lets a
resumed campaign skip work already in the store.  Because the merge is
associative and order-restoring, a resumed campaign's merged report
equals an uninterrupted run's exactly.

**Fallback.**  Without the ``fork`` start method (or with one worker, or
fewer work items than workers would help with), campaigns run inline in
the parent — same results, no processes.  ``fork`` is required because
setup closures and spec objects need not be picklable; only *results*
cross process boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.checkers.caspec import CASpec
from repro.checkers.fuzz import (
    Faults,
    FuzzReport,
    fuzz_cal,
    fuzz_linearizability,
)
from repro.checkers.seqspec import SequentialSpec
from repro.checkers.verify import ViewFn
from repro.obs.coverage import CoverageTracker
from repro.obs.metrics import Metrics
from repro.obs.provenance import ExplorationLedger
from repro.substrate.explore import (
    ExploreBudget,
    SetupFn,
    explore_all,
    shard_sleep_seeds,
    validate_exploration,
)
from repro.substrate.runtime import RunResult
from repro.substrate.schedulers import ReplayScheduler

_T = TypeVar("_T")


def default_workers() -> int:
    """Worker count when the caller does not choose: the CPU count."""
    return os.cpu_count() or 1


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return None


def _child_main(conn, task: Callable[[], Any]) -> None:
    try:
        conn.send(("ok", task()))
    except BaseException:  # noqa: BLE001 — reported to the parent
        # The full traceback, not just repr(exc): worker failures must
        # be diagnosable from the parent's exception alone.
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class WorkerFailure:
    """Sentinel result for a task quarantined by the supervisor.

    Carries enough to report the loss explicitly: the task index, the
    last error (why the worker died or was killed), and how many
    attempts were made.  Campaign runners convert these into ``skipped``
    tallies plus ``quarantined`` report entries — never silent loss.
    """

    __slots__ = ("index", "error", "attempts")

    def __init__(self, index: int, error: str, attempts: int) -> None:
        self.index = index
        self.error = error
        self.attempts = attempts

    def __repr__(self) -> str:
        return (
            f"WorkerFailure(task={self.index}, attempts={self.attempts}, "
            f"error={self.error!r})"
        )


#: Default bounded-retry policy for tasks whose worker died.
DEFAULT_MAX_RETRIES = 2
DEFAULT_RETRY_BACKOFF = 0.05  # seconds; doubles per attempt
#: Wall-clock slack granted past ``deadline_at`` before hung workers are
#: killed and their tasks quarantined (workers normally notice the
#: deadline themselves and return partial reports well within this).
DEFAULT_DEADLINE_GRACE = 5.0
#: Supervisor poll tick: upper bound on reaction latency to timeouts.
_SUPERVISE_TICK = 0.2


def _terminate_all(active: Mapping[Any, Tuple[int, Any, int, float]]) -> None:
    for conn, (_, process, _, _) in list(active.items()):
        process.terminate()
        process.join()
        conn.close()


def _map_forked(
    tasks: Sequence[Callable[[], _T]],
    workers: int,
    trace=None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    deadline_at: Optional[float] = None,
    deadline_grace: float = DEFAULT_DEADLINE_GRACE,
) -> List[_T]:
    """Run ``tasks`` across at most ``workers`` forked processes.

    Tasks are closures (fork shares the parent's memory, so nothing is
    pickled on the way in); results come back over pipes and must be
    picklable.  Falls back to inline execution when forking is
    unavailable or pointless.

    This is a *supervisor loop*:

    * a worker that dies without a result (SIGKILL, OOM) is retried
      with exponential backoff (``retry_backoff * 2**attempt``) up to
      ``max_retries`` times, then the task is quarantined — its result
      slot holds a :class:`WorkerFailure` instead of aborting the run;
    * a task exceeding ``task_timeout`` seconds on one attempt has its
      worker killed and counts as a death (retry, then quarantine);
    * once ``deadline_at`` (+ ``deadline_grace``) passes, still-running
      workers are killed and unstarted tasks quarantined, salvaging
      every already-completed partial;
    * a Python exception *inside* a task is deterministic — it aborts
      with the worker's full traceback (no retry).

    ``trace`` (parent-owned, never shared with children — forked writers
    would interleave lines) gets ``worker_spawn``/``worker_done`` plus
    ``worker_retry``/``worker_quarantine`` lifecycle events.
    ``on_result`` is called in the parent with ``(index, result)`` as
    each task finishes (both forked and inline paths; quarantined tasks
    deliver their :class:`WorkerFailure`) — the live-progress and
    checkpoint hook used by the campaign runners.
    """
    context = _fork_context()
    if context is None or workers <= 1 or len(tasks) <= 1:
        if trace is not None:
            trace.emit("workers_inline", tasks=len(tasks))
        results = []
        for index, task in enumerate(tasks):
            result = task()
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    results: List[Any] = [None] * len(tasks)
    pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
    not_before: Dict[int, float] = {}  # task index -> earliest retry instant
    # conn -> (task index, process, attempt, started_at)
    active: Dict[Any, Tuple[int, Any, int, float]] = {}

    def settle(index: int, result: Any) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    def worker_died(index: int, attempt: int, error: str, retryable: bool) -> None:
        if retryable and attempt < max_retries:
            not_before[index] = time.monotonic() + retry_backoff * (2 ** attempt)
            pending.append((index, attempt + 1))
            if trace is not None:
                trace.emit(
                    "worker_retry", task=index, attempt=attempt + 1, error=error
                )
            return
        if trace is not None:
            trace.emit(
                "worker_quarantine", task=index, attempts=attempt + 1, error=error
            )
        settle(index, WorkerFailure(index, error, attempt + 1))

    try:
        while pending or active:
            now = time.monotonic()
            expired = (
                deadline_at is not None and now >= deadline_at + deadline_grace
            )
            if expired and pending:
                # Salvage mode: nothing new starts; what finished, stays.
                for index, attempt in pending:
                    worker_died(
                        index,
                        attempt,
                        "campaign deadline expired before the task ran",
                        retryable=False,
                    )
                pending.clear()
            cursor = 0
            while cursor < len(pending) and len(active) < workers:
                index, attempt = pending[cursor]
                if not_before.get(index, 0.0) > now:
                    cursor += 1
                    continue
                pending.pop(cursor)
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_child_main, args=(child_conn, tasks[index])
                )
                process.start()
                child_conn.close()
                if trace is not None:
                    trace.emit(
                        "worker_spawn",
                        task=index,
                        pid=process.pid,
                        attempt=attempt,
                    )
                active[parent_conn] = (index, process, attempt, time.monotonic())
            if not active:
                if pending:  # every runnable task is backing off
                    soonest = min(
                        not_before.get(index, 0.0) for index, _ in pending
                    )
                    time.sleep(
                        min(max(soonest - time.monotonic(), 0.0), _SUPERVISE_TICK)
                        or 0.001
                    )
                continue
            for conn in _wait_ready(list(active), timeout=_SUPERVISE_TICK):
                index, process, attempt, _ = active.pop(conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status = "died"
                    payload = (
                        f"worker for task {index} died without a result "
                        f"(pid {process.pid}, exitcode {process.exitcode})"
                    )
                finally:
                    conn.close()
                process.join()
                if trace is not None:
                    trace.emit("worker_done", task=index, status=status)
                if status == "ok":
                    settle(index, payload)
                elif status == "error":
                    # Deterministic failure inside the task: abort loudly
                    # with the child's full traceback.
                    _terminate_all(active)
                    raise RuntimeError(f"parallel worker failed:\n{payload}")
                else:
                    worker_died(index, attempt, payload, retryable=True)
            now = time.monotonic()
            expired = (
                deadline_at is not None and now >= deadline_at + deadline_grace
            )
            for conn, (index, process, attempt, started) in list(active.items()):
                timed_out = (
                    task_timeout is not None and now - started >= task_timeout
                )
                if not timed_out and not expired:
                    continue
                del active[conn]
                process.terminate()
                process.join()
                conn.close()
                reason = (
                    f"task timeout ({task_timeout}s) exceeded"
                    if timed_out
                    else "killed at campaign deadline (grace expired)"
                )
                if trace is not None:
                    trace.emit("worker_done", task=index, status="killed")
                worker_died(index, attempt, reason, retryable=not expired)
    except BaseException:
        # SIGINT (or any other escape) must not leak forked children.
        _terminate_all(active)
        raise
    return results


# ----------------------------------------------------------------------
# Fuzz campaigns
# ----------------------------------------------------------------------
def _chunk(seeds: Sequence[int], chunks: int) -> List[List[int]]:
    """Deterministic contiguous partition preserving seed order."""
    seeds = list(seeds)
    chunks = max(1, min(chunks, len(seeds)))
    size, extra = divmod(len(seeds), chunks)
    out: List[List[int]] = []
    start = 0
    for k in range(chunks):
        end = start + size + (1 if k < extra else 0)
        out.append(seeds[start:end])
        start = end
    return out


def _chunk_every(seeds: Sequence[int], every: int) -> List[List[int]]:
    """Fixed-size contiguous chunks of ``every`` seeds (checkpoint units).

    Unlike :func:`_chunk`, the partition depends only on ``every`` and
    the seed sequence — never on the worker count — so a resumed
    campaign reconstructs the identical chunk list regardless of how
    many workers either invocation used.
    """
    seeds = list(seeds)
    if not seeds:
        return [[]]
    every = max(1, every)
    return [seeds[i : i + every] for i in range(0, len(seeds), every)]


def _quarantine_report(
    index: int, chunk: List[int], offset: int, failure: WorkerFailure
) -> FuzzReport:
    """The explicit ``skipped`` stand-in for a quarantined fuzz chunk."""
    report = FuzzReport()
    report.skipped = len(chunk)
    report.quarantined = [
        {
            "chunk": index,
            "seed_start": offset,
            "seed_count": len(chunk),
            "error": failure.error,
            "attempts": failure.attempts,
        }
    ]
    return report


def _fuzz_parallel(
    driver: Callable[..., FuzzReport],
    setup: SetupFn,
    spec,
    seeds: Sequence[int],
    workers: Optional[int],
    deadline: Optional[float],
    shrink: bool,
    kwargs: dict,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    checkpoint=None,
    checkpoint_every: int = 0,
    completed: Optional[Mapping[int, FuzzReport]] = None,
    dedup=None,
    task_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    guidance: str = "uniform",
    corpus=None,
    provenance=None,
) -> FuzzReport:
    seeds = list(seeds)
    greybox = guidance != "uniform"
    workers = default_workers() if workers is None else workers
    deadline_at = None if deadline is None else time.monotonic() + deadline
    # Checkpointed campaigns chunk by the checkpoint cadence — a pure
    # function of the seed range, never of the worker count — so an
    # interrupted campaign and its resumption agree on chunk boundaries.
    if checkpoint_every and checkpoint_every > 0:
        chunks = _chunk_every(seeds, checkpoint_every)
    else:
        chunks = _chunk(seeds, workers)
    completed = dict(completed or {})
    started = time.monotonic()
    # Global position of each chunk's first seed: worker coverage
    # trackers sample at offset + local position, so merged saturation
    # curves are keyed by the *sequential* seed position regardless of
    # worker count.
    offsets: List[int] = []
    total = 0
    for chunk in chunks:
        offsets.append(total)
        total += len(chunk)

    def task_for(chunk: List[int], offset: int) -> Callable[[], FuzzReport]:
        # Each worker owns a private registry/tracker (created inside the
        # forked closure, of the caller's classes so profiling hooks
        # survive the fork); snapshots ride back on the report and the
        # parent merges them — merging is associative and commutative, so
        # the totals equal a sequential campaign over the same seeds.
        def run_chunk() -> FuzzReport:
            chunk_coverage = None
            if coverage is not None:
                chunk_coverage = type(coverage)(
                    prefix_depth=coverage.prefix_depth, offset=offset
                )
            # Greybox chunks shrink in the worker: a corpus-guided run is
            # a function of (corpus state, seed), and the chunk's evolved
            # corpus does not exist in the parent, so the parent's
            # confirm re-run could not reproduce the failure there.
            return driver(
                setup,
                spec,
                seeds=chunk,
                shrink=shrink if greybox else False,
                deadline_at=deadline_at,
                metrics=type(metrics)() if metrics is not None else None,
                coverage=chunk_coverage,
                dedup=dedup,
                guidance=guidance,
                corpus=corpus,
                provenance=type(provenance)() if provenance is not None else None,
                **kwargs,
            )
        return run_chunk

    remaining = [index for index in range(len(chunks)) if index not in completed]
    finished = {"chunks": 0, "attempted": 0}
    progress = FuzzReport()
    seen_histories: set = set()
    for index in sorted(completed):
        finished["chunks"] += 1
        finished["attempted"] += len(chunks[index])

    def emit_progress(partial: FuzzReport) -> None:
        if trace is None or not progress_every:
            return
        progress.runs += partial.runs
        progress.unknown += partial.unknown
        progress.skipped += partial.skipped
        progress.failures.extend(partial.failures)
        live = {}
        if partial.coverage is not None:
            seen_histories.update(partial.coverage.get("histories", ()))
            live["distinct_histories"] = len(seen_histories)
        trace.emit(
            "campaign_progress",
            driver=getattr(driver, "__name__", "fuzz"),
            attempted=finished["attempted"],
            total=total,
            chunks_done=finished["chunks"],
            chunks=len(chunks),
            runs=progress.runs,
            failures=len(progress.failures),
            unknown=progress.unknown,
            skipped=progress.skipped,
            elapsed_s=time.monotonic() - started,
            **live,
        )

    def chunk_done(local_index: int, partial) -> None:
        index = remaining[local_index]
        chunk = chunks[index]
        finished["chunks"] += 1
        finished["attempted"] += len(chunk)
        if isinstance(partial, WorkerFailure):
            if checkpoint is not None:
                checkpoint.chunk_quarantined(
                    index, offsets[index], len(chunk), partial.error
                )
            emit_progress(_quarantine_report(index, chunk, offsets[index], partial))
            return
        if checkpoint is not None:
            checkpoint.chunk_done(index, offsets[index], len(chunk), partial)
        emit_progress(partial)

    partials = _map_forked(
        [task_for(chunks[i], offsets[i]) for i in remaining],
        workers,
        trace=trace,
        on_result=chunk_done,
        task_timeout=task_timeout,
        max_retries=max_retries,
        deadline_at=deadline_at,
    )
    by_index: Dict[int, FuzzReport] = dict(completed)
    for local_index, partial in enumerate(partials):
        index = remaining[local_index]
        if isinstance(partial, WorkerFailure):
            partial = _quarantine_report(
                index, chunks[index], offsets[index], partial
            )
        by_index[index] = partial
    merged = FuzzReport()
    for index in range(len(chunks)):
        merged.merge(by_index[index])
    # Contiguous chunks merged in order ⇒ merged.failures is already in
    # original seed order; the first entry is the sequential winner.
    # Greybox failures arrive already shrunk from their worker (see
    # task_for) — no parent confirm re-run, since replaying the seed
    # without the chunk's corpus state would not reproduce the failure.
    if merged.failures and shrink and not greybox:
        first = merged.failures[0]
        # Confirm re-run gets metrics=None: the campaign stats must keep
        # covering each seed exactly once (shrink replays are excluded
        # from stats in the sequential driver for the same reason).
        confirm = driver(
            setup,
            spec,
            seeds=[first.seed],
            shrink=True,
            **kwargs,
        )
        if confirm.failures:  # deterministic, but never drop a failure
            merged.failures[0] = confirm.failures[0]
    if metrics is not None and merged.stats is not None:
        metrics.merge(Metrics.from_snapshot(merged.stats))
    if coverage is not None and merged.coverage is not None:
        # Fold worker trackers into the caller's, then re-snapshot so
        # ``report.coverage`` reflects the caller's whole tracker — the
        # same contract as the sequential driver.
        coverage.merge(CoverageTracker.from_snapshot(merged.coverage))
        merged.coverage = coverage.snapshot()
    if provenance is not None and merged.provenance is not None:
        provenance.merge(ExplorationLedger.from_snapshot(merged.provenance))
        merged.provenance = provenance.snapshot()
    return merged


def fuzz_cal_parallel(
    setup: SetupFn,
    spec: CASpec,
    seeds: Sequence[int] = range(50),
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
    max_steps: Optional[int] = 5000,
    check_witness: bool = True,
    search: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
    faults: Faults = None,
    node_budget: Optional[int] = None,
    shrink: bool = True,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    checkpoint=None,
    checkpoint_every: int = 0,
    completed: Optional[Mapping[int, FuzzReport]] = None,
    dedup=None,
    task_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    guidance: str = "uniform",
    corpus=None,
    provenance=None,
) -> FuzzReport:
    """:func:`~repro.checkers.fuzz.fuzz_cal` fanned across workers.

    The merged report's tallies cover all chunks; its first failure is
    bit-identical (seed + schedule + plan) to the sequential runner's,
    regardless of ``workers`` — shrinking happens in the parent, on the
    winning seed only.

    With ``metrics``, each worker records into a private registry and
    the merged snapshots (``report.stats``) total exactly what the
    sequential driver records over the same seeds, counter by counter.
    ``coverage`` behaves the same way: workers track their chunk at its
    global seed offset and the merged tracker equals a sequential run's
    (:meth:`~repro.obs.coverage.CoverageTracker.snapshot` byte-identical).
    ``progress_every > 0`` with a trace sink emits one cumulative
    ``campaign_progress`` event per finished chunk.

    Durability hooks: ``checkpoint`` (a
    :class:`~repro.store.checkpoint.CheckpointWriter`-shaped object)
    persists each finished chunk; ``checkpoint_every`` chunks the seeds
    by that cadence instead of per worker; ``completed`` (chunk index →
    restored partial report) skips chunks a prior interrupted run
    already checkpointed — the merged result equals an uninterrupted
    campaign's.  ``dedup`` (:class:`~repro.store.dedup.ScheduleDedup`)
    skips re-checking schedules a prior campaign already verified.
    ``task_timeout``/``max_retries`` tune the worker supervisor; a chunk
    whose workers keep dying is quarantined into explicit ``skipped``
    seeds plus a ``report.quarantined`` entry instead of aborting.

    ``guidance="greybox"`` gives every chunk its own engine warm-started
    from the shared ``corpus`` snapshot; evolved chunk corpora merge
    into ``report.corpus``.  Greybox failures are shrunk inside their
    worker and the first-failure identity guarantee is relative to a
    sequential campaign over the same *chunk* (guided proposals depend
    on the chunk-local corpus state, not the seed alone).

    ``provenance`` (an :class:`~repro.obs.provenance.ExplorationLedger`)
    follows the coverage discipline: each worker records into a private
    ledger, snapshots ride back on the chunk reports, and the merged
    ledger equals a sequential campaign's byte for byte (the merge law
    is associative and commutative).
    """
    return _fuzz_parallel(
        fuzz_cal,
        setup,
        spec,
        seeds,
        workers,
        deadline,
        shrink,
        dict(
            max_steps=max_steps,
            check_witness=check_witness,
            search=search,
            view=view,
            yield_bias=yield_bias,
            faults=faults,
            node_budget=node_budget,
        ),
        metrics=metrics,
        trace=trace,
        coverage=coverage,
        progress_every=progress_every,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        completed=completed,
        dedup=dedup,
        task_timeout=task_timeout,
        max_retries=max_retries,
        guidance=guidance,
        corpus=corpus,
        provenance=provenance,
    )


def fuzz_linearizability_parallel(
    setup: SetupFn,
    spec: SequentialSpec,
    seeds: Sequence[int] = range(50),
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
    max_steps: Optional[int] = 5000,
    check_witness: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
    faults: Faults = None,
    node_budget: Optional[int] = None,
    shrink: bool = True,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    checkpoint=None,
    checkpoint_every: int = 0,
    completed: Optional[Mapping[int, FuzzReport]] = None,
    dedup=None,
    task_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    guidance: str = "uniform",
    corpus=None,
    provenance=None,
) -> FuzzReport:
    """:func:`~repro.checkers.fuzz.fuzz_linearizability` fanned across
    workers, with the same determinism guarantees (first failure, merged
    stats and merged coverage), durability hooks (checkpoint, resume,
    dedup, supervised retry/quarantine) and guidance modes as
    :func:`fuzz_cal_parallel`."""
    return _fuzz_parallel(
        fuzz_linearizability,
        setup,
        spec,
        seeds,
        workers,
        deadline,
        shrink,
        dict(
            max_steps=max_steps,
            check_witness=check_witness,
            view=view,
            yield_bias=yield_bias,
            faults=faults,
            node_budget=node_budget,
        ),
        metrics=metrics,
        trace=trace,
        coverage=coverage,
        progress_every=progress_every,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        completed=completed,
        dedup=dedup,
        task_timeout=task_timeout,
        max_retries=max_retries,
        guidance=guidance,
        corpus=corpus,
        provenance=provenance,
    )


# ----------------------------------------------------------------------
# Explore campaigns
# ----------------------------------------------------------------------
def _sanitize(result: RunResult) -> RunResult:
    """Strip the unpicklable ``World`` before a result crosses a pipe."""
    result.world = None
    return result


def _first_arity(setup: SetupFn, max_steps: Optional[int]) -> int:
    """Arity of the program's first decision point (0 if deterministic)."""
    scheduler = ReplayScheduler(())
    runtime = setup(scheduler)
    runtime.run(max_steps=max_steps)
    return scheduler.log[0][0] if scheduler.log else 0


def explore_parallel(
    setup: SetupFn,
    max_steps: Optional[int] = None,
    include_incomplete: bool = False,
    preemption_bound: Optional[int] = None,
    budget: Optional[ExploreBudget] = None,
    workers: Optional[int] = None,
    metrics=None,
    trace=None,
    coverage=None,
    reduction: str = "none",
    provenance=None,
) -> List[RunResult]:
    """Enumerate all runs, sharded by the first decision point.

    Returns the same results in the same order as
    ``list(explore_all(setup, ...))`` — each worker owns the subtrees of
    some first-decision alternatives (``pin_prefix=[k]``), and shard
    results are concatenated in ``k`` order.

    ``budget`` semantics under sharding: the deadline is shared (every
    worker gets the remaining wall-clock at campaign entry); ``max_runs``
    and ``step_budget`` apply *per shard*.  Worker tallies are summed
    back into the caller's budget, and a trip in any shard marks it
    tripped — so a cut campaign still reports ``UNKNOWN`` downstream.

    ``metrics`` counts ``explore.runs``/``explore.steps`` over the merged
    results and ``explore.budget_trips`` when the campaign was cut.
    ``coverage`` observes the merged results in enumeration order, so
    sharded and sequential campaigns produce identical trackers.

    ``reduction="sleep-set"`` / ``reduction="dpor"`` apply partial-order
    reduction per shard, with the shards exchanging reduction knowledge
    at their boundaries: shard ``k`` starts with the first-step
    footprints of shards ``0..k-1`` asleep (see
    :func:`~repro.substrate.explore.shard_sleep_seeds`) — the sleep
    state a sequential reduced sweep holds when it enters the root's
    ``k``-th branch — so the sharded sweep prunes like the unsharded
    one and the concatenated shard results equal the sequential reduced
    enumeration.

    ``provenance`` (an :class:`~repro.obs.provenance.ExplorationLedger`)
    audits reduced sweeps: each shard records into a private ledger
    whose snapshot rides back beside the shard results, and the parent
    folds them — the merged ledger's dispositions reconcile against the
    merged visited-schedule count exactly as a sequential sweep's do.
    """
    validate_exploration(reduction, preemption_bound=preemption_bound)
    workers = default_workers() if workers is None else workers
    if budget is not None:
        budget.start()
    arity = _first_arity(setup, max_steps)
    context = _fork_context()
    if context is None or workers <= 1 or arity <= 1:
        results = list(
            explore_all(
                setup,
                max_steps=max_steps,
                include_incomplete=include_incomplete,
                preemption_bound=preemption_bound,
                budget=budget,
                reduction=reduction,
                provenance=provenance,
            )
        )
        _observe_explore(metrics, trace, results, budget, coverage)
        return results
    remaining = budget.remaining_deadline() if budget is not None else None
    seeds = (
        shard_sleep_seeds(setup, arity) if reduction != "none" else None
    )

    def shard_task(
        pin: int,
    ) -> Callable[[], Tuple[List[RunResult], ExploreBudget, Optional[dict]]]:
        def run_shard() -> Tuple[List[RunResult], ExploreBudget, Optional[dict]]:
            shard_budget = (
                ExploreBudget(
                    max_runs=budget.max_runs,
                    step_budget=budget.step_budget,
                    deadline=remaining,
                )
                if budget is not None
                else None
            )
            # Private per-shard ledger; its snapshot crosses the pipe
            # (the ledger itself holds only plain dicts, but snapshots
            # are the merge currency everywhere else too).
            shard_ledger = (
                type(provenance)() if provenance is not None else None
            )
            results = [
                _sanitize(result)
                for result in explore_all(
                    setup,
                    max_steps=max_steps,
                    include_incomplete=include_incomplete,
                    preemption_bound=preemption_bound,
                    budget=shard_budget,
                    pin_prefix=[pin],
                    reduction=reduction,
                    sleep_seed=None if seeds is None else seeds[pin],
                    provenance=shard_ledger,
                )
            ]
            return (
                results,
                shard_budget or ExploreBudget(),
                None if shard_ledger is None else shard_ledger.snapshot(),
            )
        return run_shard

    shards = _map_forked(
        [shard_task(k) for k in range(arity)],
        workers,
        trace=trace,
        deadline_at=None if remaining is None else time.monotonic() + remaining,
    )
    merged: List[RunResult] = []
    for pin, shard in enumerate(shards):
        if isinstance(shard, WorkerFailure):
            # A lost shard means the sweep is no longer exhaustive.  With
            # a budget, degrade gracefully (tripped → UNKNOWN downstream);
            # without one the caller has no degradation channel, so the
            # loss must abort rather than pass silently.
            if budget is None:
                raise RuntimeError(
                    f"explore shard {pin} quarantined after "
                    f"{shard.attempts} attempt(s): {shard.error}"
                )
            if not budget.tripped:
                budget.tripped = True
                budget.reason = (
                    f"shard {pin} quarantined ({shard.error})"
                )
            continue
        results, shard_budget, shard_ledger = shard
        merged.extend(results)
        if provenance is not None and shard_ledger is not None:
            provenance.merge(ExplorationLedger.from_snapshot(shard_ledger))
        if budget is not None:
            budget.runs += shard_budget.runs
            budget.steps += shard_budget.steps
            if shard_budget.tripped and not budget.tripped:
                budget.tripped = True
                budget.reason = shard_budget.reason
    _observe_explore(metrics, trace, merged, budget, coverage)
    return merged


def _observe_explore(
    metrics, trace, results: List[RunResult], budget, coverage=None
) -> None:
    """Fold a finished explore campaign into metrics/trace/coverage sinks.

    Counts are taken from the *merged* results, so sharded and sequential
    campaigns record identical ``explore.*`` totals (and, with a
    ``coverage`` tracker, identical snapshots — positions follow the
    sequential enumeration order).
    """
    if metrics is not None:
        metrics.count("explore.runs", len(results))
        metrics.count("explore.steps", sum(r.steps for r in results))
        if budget is not None and budget.tripped:
            metrics.count("explore.budget_trips")
    if coverage is not None:
        for position, result in enumerate(results):
            coverage.observe_run(position, result.schedule, result.history)
    if trace is not None:
        trace.emit(
            "explore_end",
            runs=len(results),
            tripped=bool(budget is not None and budget.tripped),
            reason=None if budget is None else budget.reason,
        )

"""Shared search scaffolding for the history checkers.

Both the classic and the CAL checker explore assignments of a complete
history's operations to positions in a candidate witness, constrained by
the real-time order.  This module precomputes the constraint structure:
per-operation predecessor sets and the *frontier* function (operations
all of whose predecessors have been taken — by construction pairwise
concurrent, hence candidates for the same CA-element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.history import History, OperationSpan


@dataclass(frozen=True)
class SearchProblem:
    """Precomputed precedence structure of a complete history."""

    spans: Tuple[OperationSpan, ...]
    predecessors: Tuple[FrozenSet[int], ...]

    @staticmethod
    def of(history: History) -> "SearchProblem":
        if not history.is_complete():
            raise ValueError("search requires a complete history")
        spans = history.spans()
        preds: List[Set[int]] = [set() for _ in spans]
        for i, earlier in enumerate(spans):
            for j, later in enumerate(spans):
                if i != j and history.precedes(earlier, later):
                    preds[j].add(i)
        return SearchProblem(
            spans=spans,
            predecessors=tuple(frozenset(p) for p in preds),
        )

    def frontier(self, taken: FrozenSet[int]) -> List[int]:
        """Untaken operations whose predecessors are all taken.

        Any two frontier operations are concurrent in the history: were
        one ordered before the other, the later one's predecessor set
        would contain the untaken earlier one.
        """
        return [
            i
            for i in range(len(self.spans))
            if i not in taken and self.predecessors[i] <= taken
        ]

    def __len__(self) -> int:
        return len(self.spans)


def nonempty_subsets(items: Sequence[int]) -> List[Tuple[int, ...]]:
    """All non-empty subsets, smallest first (favours singleton witnesses,
    which keeps the classic-linearizability special case fast)."""
    out: List[Tuple[int, ...]] = []
    n = len(items)
    for mask in range(1, 1 << n):
        out.append(tuple(items[k] for k in range(n) if mask & (1 << k)))
    out.sort(key=len)
    return out

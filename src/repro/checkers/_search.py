"""Shared search scaffolding for the history checkers — bitmask core.

Both the classic and the CAL checker explore assignments of a complete
history's operations to positions in a candidate witness, constrained by
the real-time order.  This module precomputes the constraint structure:
per-operation predecessor/successor sets and the *frontier* function
(operations all of whose predecessors have been taken — by construction
pairwise concurrent, hence candidates for the same CA-element).

All sets of operation indices are represented as Python ints used as
bitmasks (bit ``i`` set ⇔ span ``i`` is in the set):

* membership/containment tests are single big-int operations
  (``taken & pred_mask == pred_mask`` instead of ``frozenset <=``);
* memo keys are ``(int, state_id)`` pairs — no per-node ``frozenset``
  allocation;
* frontiers update *incrementally*: taking a subset can only enable
  real-time successors of its members (``succ_masks``), so the checkers
  never rescan all spans per node.

The precedence masks depend only on the *index structure* of a history
(which response precedes which invocation), not on operation values, so
they are cached across the completions of one history: every completion
that drops the same pending invocations shares one mask computation
instead of rebuilding an O(n²) ``precedes`` matrix each time.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.core.history import History, OperationSpan

# Structural-key → (pred_masks, succ_masks) cache shared across the
# completions of a history (and across histories that happen to share an
# index shape).  Bounded: cleared wholesale when it grows past the cap —
# the workloads that matter re-enter steady state within one history.
_MASK_CACHE: Dict[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
_MASK_CACHE_CAP = 4096

# Process-local cache diagnostics (see mask_cache_stats()).  Plain module
# ints, not Metrics counters: hit rates depend on cache warmth, which is
# process history — keeping them out of Metrics keeps every Metrics
# counter deterministic (the parallel-merge equality guarantee).
_MASK_CACHE_HITS = 0
_MASK_CACHE_MISSES = 0


def structural_key(spans: Sequence[OperationSpan]) -> Tuple[Tuple[int, int], ...]:
    """The index shape of a history — the mask-cache key.

    Depends only on which response precedes which invocation, never on
    operation values; two histories with the same key share one
    precedence-mask computation.
    """
    return tuple(
        (s.inv_index, -1 if s.res_index is None else s.res_index) for s in spans
    )


def mask_cache_stats() -> Dict[str, int]:
    """Process-local structural-cache diagnostics (hits/misses/size)."""
    return {
        "hits": _MASK_CACHE_HITS,
        "misses": _MASK_CACHE_MISSES,
        "size": len(_MASK_CACHE),
    }


def clear_mask_cache() -> None:
    """Drop the structural cache and reset its diagnostics (tests)."""
    global _MASK_CACHE_HITS, _MASK_CACHE_MISSES
    _MASK_CACHE.clear()
    _MASK_CACHE_HITS = 0
    _MASK_CACHE_MISSES = 0


def _precedence_masks(
    spans: Sequence[OperationSpan],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(pred_masks, succ_masks) for a complete history's spans.

    ``span_i ≺_H span_j`` iff ``res_index[i] < inv_index[j]``; instead of
    the O(n²) pairwise loop, sweep the spans in invocation order while
    accumulating the mask of already-responded operations — O(n log n).
    """
    global _MASK_CACHE_HITS, _MASK_CACHE_MISSES
    key = structural_key(spans)
    cached = _MASK_CACHE.get(key)
    if cached is not None:
        _MASK_CACHE_HITS += 1
        return cached
    _MASK_CACHE_MISSES += 1
    n = len(spans)
    by_inv = sorted(range(n), key=lambda i: spans[i].inv_index)
    by_res = sorted(range(n), key=lambda i: spans[i].res_index or 0)
    pred = [0] * n
    responded = 0
    r = 0
    for j in by_inv:
        inv_index = spans[j].inv_index
        while r < n and (spans[by_res[r]].res_index or 0) < inv_index:
            responded |= 1 << by_res[r]
            r += 1
        pred[j] = responded
    succ = [0] * n
    for j, mask in enumerate(pred):
        m = mask
        while m:
            low = m & -m
            succ[low.bit_length() - 1] |= 1 << j
            m ^= low
    result = (tuple(pred), tuple(succ))
    if len(_MASK_CACHE) >= _MASK_CACHE_CAP:
        _MASK_CACHE.clear()
    _MASK_CACHE[key] = result
    return result


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass(frozen=True)
class SearchProblem:
    """Precomputed precedence structure of a complete history.

    ``pred_masks[j]`` has bit ``i`` set iff ``span_i ≺_H span_j``;
    ``succ_masks[i]`` is the transpose.  ``full_mask`` is the goal test
    (all operations taken).
    """

    spans: Tuple[OperationSpan, ...]
    pred_masks: Tuple[int, ...]
    succ_masks: Tuple[int, ...]

    @staticmethod
    def of(
        history: History, validate: bool = True, metrics=None
    ) -> "SearchProblem":
        """Build the precedence structure of ``history``.

        ``validate=False`` skips the completeness re-check — for callers
        that have already validated the history (the checkers validate at
        their public ``check()`` boundary, and ``History.completions()``
        yields complete histories by construction).

        ``metrics`` (an :class:`~repro.obs.metrics.Metrics`) counts
        ``search.problems`` and tracks the largest problem built;
        structural-cache hit rates stay process-local — see
        :func:`mask_cache_stats`.
        """
        if validate and not history.is_complete():
            raise ValueError("search requires a complete history")
        spans = history.spans()
        pred, succ = _precedence_masks(spans)
        if metrics is not None:
            metrics.count("search.problems")
            metrics.record_max("search.problem_size_max", len(spans))
        return SearchProblem(spans=spans, pred_masks=pred, succ_masks=succ)

    # ------------------------------------------------------------------
    @property
    def full_mask(self) -> int:
        return (1 << len(self.spans)) - 1

    def predecessor_sets(self) -> Tuple[FrozenSet[int], ...]:
        """Frozenset view of ``pred_masks`` (for set-based searches such
        as the interval-linearizability checker)."""
        return tuple(frozenset(iter_bits(m)) for m in self.pred_masks)

    # ------------------------------------------------------------------
    def frontier_mask(self, taken: int) -> int:
        """Mask of untaken operations whose predecessors are all taken.

        Any two frontier operations are concurrent in the history: were
        one ordered before the other, the later one's predecessor set
        would contain the untaken earlier one.  Full scan — use once at
        the root, then :meth:`next_frontier` per step.
        """
        mask = 0
        for i, pred in enumerate(self.pred_masks):
            if not taken >> i & 1 and pred & ~taken == 0:
                mask |= 1 << i
        return mask

    def next_frontier(self, frontier: int, taken: int, subset: int) -> int:
        """Frontier after taking ``subset`` out of ``frontier``.

        ``taken`` is the mask *after* the subset was added.  Only
        real-time successors of the subset's members can have become
        newly enabled, so the update is local to ``succ_masks`` instead
        of a rescan of all spans.
        """
        new = frontier & ~subset
        candidates = 0
        m = subset
        while m:
            low = m & -m
            candidates |= self.succ_masks[low.bit_length() - 1]
            m ^= low
        candidates &= ~taken & ~new
        while candidates:
            low = candidates & -candidates
            if self.pred_masks[low.bit_length() - 1] & ~taken == 0:
                new |= low
            candidates ^= low
        return new

    # ------------------------------------------------------------------
    def frontier(self, taken) -> List[int]:
        """Frontier as a list of indices (compatibility helper).

        ``taken`` may be an int mask or any iterable of indices.
        """
        if not isinstance(taken, int):
            mask = 0
            for i in taken:
                mask |= 1 << i
            taken = mask
        return list(iter_bits(self.frontier_mask(taken)))

    def __len__(self) -> int:
        return len(self.spans)


def flush_search_tallies(
    metrics,
    nodes: int,
    memo_hits: int,
    memo_misses: int,
    candidates: int,
    rejections: int,
    frames: int,
    frontier_sum: int,
    frontier_max: int,
) -> None:
    """Fold one search's local tallies into a metrics registry.

    The checkers keep plain local ints in their hot loops (so the
    disabled-metrics path pays nothing but integer increments) and flush
    once per search through this helper; every value is a pure function
    of the searched history and spec, so parallel merges of per-worker
    registries reproduce the sequential totals exactly.
    """
    metrics.count("search.nodes", nodes)
    metrics.count("search.memo_hits", memo_hits)
    metrics.count("search.memo_misses", memo_misses)
    metrics.count("search.candidates_tried", candidates)
    metrics.count("search.spec_rejections", rejections)
    metrics.count("search.frames_pushed", frames)
    metrics.count("search.frontier_width_sum", frontier_sum)
    if frontier_max:
        metrics.record_max("search.frontier_width_max", frontier_max)
    observe = getattr(metrics, "observe_search", None)
    if observe is not None:
        # A profiling registry (repro.obs.profile.SearchProfiler) also
        # buckets the tallies by its current (checker, oid, width)
        # context; plain Metrics has no such hook.
        observe(
            nodes=nodes,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            candidates=candidates,
            rejections=rejections,
            frames=frames,
            frontier_sum=frontier_sum,
            frontier_max=frontier_max,
        )


def nonempty_subsets(items: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All non-empty subsets, *lazily*, smallest first.

    Singletons are yielded before any pair is even constructed — a
    frontier of 20 concurrent operations no longer allocates ~1M tuples
    before the first candidate is tried (favours singleton witnesses,
    which keeps the classic-linearizability special case fast).
    """
    items = tuple(items)
    for size in range(1, len(items) + 1):
        yield from combinations(items, size)


def subset_masks(mask: int) -> Iterator[int]:
    """All non-empty submasks of ``mask``, lazily, in popcount order."""
    bits = [1 << i for i in iter_bits(mask)]
    for size in range(1, len(bits) + 1):
        for combo in combinations(bits, size):
            out = 0
            for bit in combo:
                out |= bit
            yield out

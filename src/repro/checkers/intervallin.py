"""Interval-linearizability (Castañeda, Rajsbaum & Raynal [3]; §6).

Interval-linearizability generalizes set-linearizability (and hence CAL)
by letting an operation *span several consecutive points*: a witness is a
sequence of rounds, each round invoking some operations and responding to
some (possibly the same) operations, and an operation may stay open
across rounds.  Castañeda et al. show this strictly exceeds
set-linearizability (e.g. the write-snapshot task).

Specification interface: an :class:`IntervalSpec` is a transition system
over rounds — ``step(state, invoked, responded)`` where ``invoked`` and
``responded`` are frozensets of operations (an operation appears in
``responded`` in the round it takes its final effect; it must have been
invoked in the same or an earlier round).

The checker searches assignments of a start round and an end round to
every operation such that

* the real-time order is preserved: ``i ≺_H j ⟹ end(i) < start(j)``;
* every round is accepted by the spec.

Setting ``end = start`` for every operation recovers exactly the CAL
search, which is how the inclusion "set-linearizable ⟹
interval-linearizable" is validated in the tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.checkers.result import CheckResult
from repro.checkers._search import SearchProblem, nonempty_subsets
from repro.core.actions import Operation
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History


class IntervalSpec(ABC):
    """A transition system over (invoked, responded) rounds."""

    def __init__(self, oid: str) -> None:
        self.oid = oid

    @abstractmethod
    def initial(self) -> Hashable:
        """The initial abstract state."""

    @abstractmethod
    def step(
        self,
        state: Hashable,
        invoked: FrozenSet[Operation],
        responded: FrozenSet[Operation],
    ) -> Optional[Hashable]:
        """Successor state if the round is legal, else ``None``."""

    def response_candidates(self, invocation):
        return ()


class IntervalLinearizabilityChecker:
    """Decides interval-linearizability of a history w.r.t. a spec."""

    def __init__(self, spec: IntervalSpec) -> None:
        self.spec = spec

    def check(self, history: History, project: bool = True) -> CheckResult:
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        if any(action.oid != self.spec.oid for action in target):
            return CheckResult(
                False, reason="history contains other objects' operations"
            )
        best = CheckResult(False, reason="no interval witness found")
        for completion in target.completions(self.spec.response_candidates):
            result = self._check_complete(completion)
            best.nodes += result.nodes
            if result.ok:
                result.nodes = best.nodes
                return result
        return best

    # ------------------------------------------------------------------
    def _check_complete(self, history: History) -> CheckResult:
        problem = SearchProblem.of(history)
        predecessors = problem.predecessor_sets()
        total = len(problem)
        nodes = 0
        seen: Set[
            Tuple[FrozenSet[int], FrozenSet[int], Hashable]
        ] = set()
        rounds: List[Tuple[FrozenSet[Operation], FrozenSet[Operation]]] = []

        def op_of(i: int) -> Operation:
            op = problem.spans[i].operation
            assert op is not None
            return op

        def dfs(
            responded: FrozenSet[int],
            open_ops: FrozenSet[int],
            state: Hashable,
        ) -> bool:
            nonlocal nodes
            nodes += 1
            if len(responded) == total:
                return True
            key = (responded, open_ops, state)
            if key in seen:
                return False
            seen.add(key)
            # Operations that may start this round: untaken, all real-time
            # predecessors already *responded*.
            startable = [
                i
                for i in range(total)
                if i not in responded
                and i not in open_ops
                and predecessors[i] <= responded
            ]
            # Choose a (possibly empty) set to invoke...
            invoke_options: List[Tuple[int, ...]] = [()]
            invoke_options += nonempty_subsets(startable)
            for invs in invoke_options:
                now_open = open_ops | set(invs)
                if not now_open:
                    continue
                # ... and a (possibly empty, unless nothing was invoked)
                # set of open operations to respond to.
                respond_pool = sorted(now_open)
                respond_options: List[Tuple[int, ...]] = []
                if invs:
                    respond_options.append(())
                respond_options += nonempty_subsets(respond_pool)
                for ress in respond_options:
                    inv_set = frozenset(op_of(i) for i in invs)
                    res_set = frozenset(op_of(i) for i in ress)
                    successor = self.spec.step(state, inv_set, res_set)
                    if successor is None:
                        continue
                    rounds.append((inv_set, res_set))
                    if dfs(
                        responded | set(ress),
                        now_open - set(ress),
                        successor,
                    ):
                        return True
                    rounds.pop()
            return False

        if dfs(frozenset(), frozenset(), self.spec.initial()):
            # Render the witness as a CA-trace-like structure: one element
            # per round listing the operations responded in that round.
            elements = [
                CAElement(self.spec.oid, res)
                for _, res in rounds
                if res
            ]
            return CheckResult(
                True,
                witness=CATrace(elements),
                completion=history,
                nodes=nodes,
            )
        return CheckResult(
            False, reason="no interval witness found", nodes=nodes
        )

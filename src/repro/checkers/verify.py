"""Whole-program verification drivers.

These tie the substrate to the checkers: explore every interleaving of a
program (exhaustively, up to a step bound) and check each run's history
against a specification — by search (Def. 6 directly) and/or by
validating the recorded auxiliary-trace witness (the paper's
instrumentation-based proof technique, §4–§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.checkers.cal import CALChecker
from repro.checkers.caspec import CASpec
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.seqspec import SequentialSpec
from repro.core.catrace import CATrace
from repro.core.history import History
from repro.substrate.explore import SetupFn, explore_all
from repro.substrate.runtime import RunResult


@dataclass
class Failure:
    """One run that violated the specification."""

    schedule: List[int]
    history: History
    trace: CATrace
    reason: str

    def __repr__(self) -> str:
        return f"Failure({self.reason}; schedule={self.schedule})"


@dataclass
class VerificationReport:
    """Aggregate outcome of checking every explored run."""

    runs: int = 0
    incomplete: int = 0
    nodes: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.runs > 0 and not self.failures

    def __repr__(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        return (
            f"VerificationReport({verdict}, runs={self.runs}, "
            f"cut={self.incomplete}, nodes={self.nodes})"
        )


ViewFn = Callable[[CATrace], CATrace]


def verify_cal(
    setup: SetupFn,
    spec: CASpec,
    max_steps: Optional[int] = None,
    check_witness: bool = True,
    search: bool = True,
    view: Optional[ViewFn] = None,
    limit: Optional[int] = None,
    preemption_bound: Optional[int] = None,
) -> VerificationReport:
    """Explore all runs of ``setup`` and check CAL w.r.t. ``spec``.

    ``check_witness`` validates the recorded auxiliary trace of each run
    (viewed through ``view`` when the object is composite — §4's
    ``T_o = F_o(T)``); ``search`` independently looks for *some* agreeing
    spec trace (Def. 6).  Enabling both cross-validates instrumentation
    against the definition.
    """
    checker = CALChecker(spec)
    report = VerificationReport()
    for run in explore_all(
        setup,
        max_steps=max_steps,
        limit=limit,
        preemption_bound=preemption_bound,
    ):
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        if check_witness:
            trace = view(run.trace) if view is not None else run.trace
            witness = trace.project_object(spec.oid)
            result = checker.check_witness(history, witness)
            report.nodes += result.nodes
            if not result.ok:
                report.failures.append(
                    Failure(run.schedule, history, witness, result.reason)
                )
                continue
        if search:
            result = checker.check(history)
            report.nodes += result.nodes
            if not result.ok:
                report.failures.append(
                    Failure(run.schedule, history, run.trace, result.reason)
                )
    return report


def verify_linearizability(
    setup: SetupFn,
    spec: SequentialSpec,
    max_steps: Optional[int] = None,
    check_witness: bool = False,
    view: Optional[ViewFn] = None,
    limit: Optional[int] = None,
    preemption_bound: Optional[int] = None,
) -> VerificationReport:
    """Explore all runs of ``setup`` and check classic linearizability.

    With ``check_witness``, the recorded trace (viewed through ``view``)
    must consist of singleton elements forming a legal linearization that
    the history agrees with — the modular elimination-stack proof (E5)
    uses exactly this with ``view = F_ES``.
    """
    checker = LinearizabilityChecker(spec)
    report = VerificationReport()
    for run in explore_all(
        setup,
        max_steps=max_steps,
        limit=limit,
        preemption_bound=preemption_bound,
    ):
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        if check_witness:
            trace = view(run.trace) if view is not None else run.trace
            witness = trace.project_object(spec.oid)
            problem = _validate_singleton_witness(
                checker, history, witness
            )
            if problem is not None:
                report.failures.append(
                    Failure(run.schedule, history, witness, problem)
                )
                continue
        result = checker.check(history)
        report.nodes += result.nodes
        if not result.ok:
            report.failures.append(
                Failure(run.schedule, history, run.trace, result.reason)
            )
    return report


def _validate_singleton_witness(
    checker: LinearizabilityChecker,
    history: History,
    witness: CATrace,
) -> Optional[str]:
    """Check a recorded singleton trace is a valid linearization witness."""
    from repro.core.agreement import agrees

    if any(not e.is_singleton() for e in witness):
        return "witness contains non-singleton elements"
    ops = [e.single() for e in witness]
    if not checker.spec.accepts(ops):
        return "witness rejected by sequential spec"
    target = history.project_object(checker.spec.oid)
    if not target.is_complete():
        return "history incomplete at witness validation"
    if not agrees(target, witness):
        return "history does not agree with witness (Def. 5)"
    return None

"""Whole-program verification drivers.

These tie the substrate to the checkers: explore every interleaving of a
program (exhaustively, up to a step bound) and check each run's history
against a specification — by search (Def. 6 directly) and/or by
validating the recorded auxiliary-trace witness (the paper's
instrumentation-based proof technique, §4–§5).

Robustness: exploration takes an optional
:class:`~repro.substrate.explore.ExploreBudget` and each per-run search a
``node_budget``/``deadline``; when a budget trips, the driver degrades —
falling back from exhaustive search to linear witness validation where it
can — and the report's verdict is ``UNKNOWN`` instead of the process
hanging on a factorial schedule or search space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.checkers.cal import CALChecker, complete_from_witness
from repro.checkers.caspec import CASpec
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.result import Verdict
from repro.checkers.seqspec import SequentialSpec
from repro.core.catrace import CATrace
from repro.core.history import History
from repro.obs.metrics import Metrics, observe_run
from repro.obs.report import CounterexampleReport
from repro.substrate.explore import (
    ExploreBudget,
    SetupFn,
    explore_all,
    validate_exploration,
)


@dataclass
class Failure:
    """One run that violated the specification.

    ``report`` carries the rendered
    :class:`~repro.obs.report.CounterexampleReport` (timeline + replay
    snippet) for the failing run.
    """

    schedule: List[int]
    history: History
    trace: CATrace
    reason: str
    report: Optional[CounterexampleReport] = None

    def __repr__(self) -> str:
        return f"Failure({self.reason}; schedule={self.schedule})"


@dataclass
class VerificationReport:
    """Aggregate outcome of checking every explored run.

    ``unknown`` counts runs whose search was cut by a budget;
    ``budget`` (when supplied) records whether exploration itself was
    cut short.  :attr:`verdict` folds both into the three-valued answer:
    a clean ``OK`` needs every run checked and every check definitive.
    ``stats`` is the driver's :meth:`~repro.obs.metrics.Metrics.snapshot`
    when run with ``metrics=``.
    """

    runs: int = 0
    incomplete: int = 0
    nodes: int = 0
    failures: List[Failure] = field(default_factory=list)
    unknown: int = 0
    budget: Optional[ExploreBudget] = None
    stats: Optional[Dict[str, Dict[str, Any]]] = None
    coverage: Optional[Dict[str, Any]] = None
    #: :meth:`ExplorationLedger.snapshot` of the driver's reduction
    #: audit (None unless run with ``provenance=``).
    provenance: Optional[Dict[str, Any]] = None

    @property
    def verdict(self) -> Verdict:
        if self.failures:
            return Verdict.FAIL
        if (
            self.runs == 0
            or self.unknown
            or (self.budget is not None and self.budget.tripped)
        ):
            return Verdict.UNKNOWN
        return Verdict.OK

    @property
    def ok(self) -> bool:
        return self.verdict is Verdict.OK

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report's tallies, failures and stats into this one.

        Like :meth:`~repro.checkers.fuzz.FuzzReport.merge`, the fold is
        associative and order-restoring: a verification campaign sharded
        by ``pin_prefix`` (the durable-campaign checkpoint unit) merges,
        shard by shard in pin order, to exactly the report a single
        unsharded sweep produces.  ``budget`` objects are not merged —
        sharded durable campaigns run each shard to completion instead.
        """
        from repro.checkers.fuzz import (
            _merge_coverage,
            _merge_provenance,
            _merge_stats,
        )

        self.runs += other.runs
        self.incomplete += other.incomplete
        self.nodes += other.nodes
        self.unknown += other.unknown
        self.failures.extend(other.failures)
        self.stats = _merge_stats(self.stats, other.stats)
        self.coverage = _merge_coverage(self.coverage, other.coverage)
        self.provenance = _merge_provenance(
            self.provenance, getattr(other, "provenance", None)
        )

    def __repr__(self) -> str:
        if self.ok:
            verdict = "OK"
        elif self.failures:
            verdict = f"{len(self.failures)} failure(s)"
        else:
            verdict = "UNKNOWN"
        extra = f", unknown={self.unknown}" if self.unknown else ""
        return (
            f"VerificationReport({verdict}, runs={self.runs}, "
            f"cut={self.incomplete}, nodes={self.nodes}{extra})"
        )


ViewFn = Callable[[CATrace], CATrace]


def _record_failure(
    report: VerificationReport,
    run,
    witness: CATrace,
    reason: str,
    oid: str,
    max_steps: Optional[int],
) -> None:
    """Append a Failure with its counterexample report attached."""
    failure = Failure(run.schedule, run.history, witness, reason)
    failure.report = CounterexampleReport.build(
        run.history,
        reason,
        schedule=run.schedule,
        oid=oid,
        max_steps=max_steps,
    )
    report.failures.append(failure)


def verify_cal(
    setup: SetupFn,
    spec: CASpec,
    max_steps: Optional[int] = None,
    check_witness: bool = True,
    search: bool = True,
    view: Optional[ViewFn] = None,
    limit: Optional[int] = None,
    preemption_bound: Optional[int] = None,
    budget: Optional[ExploreBudget] = None,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    pin_prefix: Sequence[int] = (),
    reduction: str = "none",
    sleep_seed=None,
    provenance=None,
) -> VerificationReport:
    """Explore all runs of ``setup`` and check CAL w.r.t. ``spec``.

    ``check_witness`` validates the recorded auxiliary trace of each run
    (viewed through ``view`` when the object is composite — §4's
    ``T_o = F_o(T)``); ``search`` independently looks for *some* agreeing
    spec trace (Def. 6).  Enabling both cross-validates instrumentation
    against the definition.

    When a per-run search trips its ``node_budget``/``deadline``, the
    driver falls back to witness validation for that run (if not already
    performed) and counts the run ``unknown`` — degraded but never hung.

    ``metrics``/``trace`` (see :mod:`repro.obs`) observe the driver; the
    driver's counters land in ``report.stats`` and are merged into the
    caller's ``metrics``.  ``coverage``
    (:class:`~repro.obs.coverage.CoverageTracker`) fingerprints every
    explored run; its snapshot lands in ``report.coverage``.  With
    ``progress_every > 0`` and a trace sink, a ``campaign_progress``
    event is emitted every that many explored runs.

    ``pin_prefix`` confines exploration to one decision subtree (see
    :func:`~repro.substrate.explore.explore_all`) — the sharding hook
    durable campaigns checkpoint on: per-shard reports merged in pin
    order (:meth:`VerificationReport.merge`) equal an unsharded sweep.

    ``reduction="sleep-set"`` / ``reduction="dpor"`` prune
    commutativity-equivalent interleavings during exploration (see
    :func:`~repro.substrate.explore.explore_all`): the verdict and the
    set of distinct failing histories are preserved, with strictly
    fewer runs checked whenever independent steps commute.
    ``sleep_seed`` hands a sharded reduced sweep the sleep state of its
    siblings (see :func:`~repro.substrate.explore.shard_sleep_seeds`);
    the reduction/bound combination is validated before any trace event
    is emitted.

    ``provenance`` (an :class:`~repro.obs.provenance.ExplorationLedger`)
    audits the reduced engines' schedule dispositions — executed,
    pruned, race-reversed, with race evidence under ``"dpor"`` — into a
    campaign-local ledger whose snapshot lands in ``report.provenance``
    and merges into the caller's ledger, mirroring ``metrics``.
    Observation-only: the explored schedules are identical either way.
    """
    from repro.checkers.fuzz import _campaign_ledger

    validate_exploration(reduction, preemption_bound=preemption_bound)
    checker = CALChecker(spec)
    report = VerificationReport(budget=budget)
    campaign = type(metrics)() if metrics is not None else None
    audit = _campaign_ledger(provenance)
    started = time.monotonic()
    attempted = 0
    if budget is not None:
        budget.start()
    if trace is not None:
        trace.emit("verify_begin", driver="verify_cal", oid=spec.oid)
    for run in explore_all(
        setup,
        max_steps=max_steps,
        limit=limit,
        preemption_bound=preemption_bound,
        budget=budget,
        pin_prefix=pin_prefix,
        reduction=reduction,
        sleep_seed=sleep_seed,
        provenance=audit,
    ):
        if campaign is not None:
            observe_run(campaign, run)
        position, attempted = attempted, attempted + 1
        if coverage is not None:
            coverage.observe_run(position, run.schedule, run.history, oid=spec.oid)
        if trace is not None and progress_every and attempted % progress_every == 0:
            live = {}
            if coverage is not None:
                live["distinct_histories"] = len(coverage.histories)
            trace.emit(
                "campaign_progress",
                driver="verify_cal",
                attempted=attempted,
                runs=report.runs + (1 if run.completed else 0),
                failures=len(report.failures),
                unknown=report.unknown,
                elapsed_s=time.monotonic() - started,
                **live,
            )
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        recorded = view(run.trace) if view is not None else run.trace
        witness = recorded.project_object(spec.oid)
        if coverage is not None:
            coverage.observe_spec_trace(spec, witness)
        witness_checked = False
        if check_witness:
            result = checker.check_witness(history, witness, metrics=campaign)
            report.nodes += result.nodes
            witness_checked = True
            if not result.ok:
                _record_failure(
                    report, run, witness, result.reason, spec.oid, max_steps
                )
                continue
        if search:
            result = checker.check(
                history,
                node_budget=node_budget,
                deadline=deadline,
                metrics=campaign,
                trace=trace,
            )
            report.nodes += result.nodes
            if result.unknown:
                report.unknown += 1
                if not witness_checked:
                    # Degrade: the linear witness check still decides
                    # this run even when search is over budget.
                    fallback = checker.check_witness(
                        history, witness, metrics=campaign
                    )
                    report.nodes += fallback.nodes
                    if not fallback.ok:
                        _record_failure(
                            report,
                            run,
                            witness,
                            fallback.reason,
                            spec.oid,
                            max_steps,
                        )
                continue
            if not result.ok:
                _record_failure(
                    report, run, run.trace, result.reason, spec.oid, max_steps
                )
    if campaign is not None:
        report.stats = campaign.snapshot()
        metrics.merge(campaign)
    if coverage is not None:
        report.coverage = coverage.snapshot()
    if audit is not None:
        report.provenance = audit.snapshot()
        provenance.merge(audit)
    if trace is not None:
        trace.emit(
            "verify_end",
            driver="verify_cal",
            verdict=report.verdict.value,
            runs=report.runs,
            failures=len(report.failures),
            unknown=report.unknown,
        )
    return report


def verify_linearizability(
    setup: SetupFn,
    spec: SequentialSpec,
    max_steps: Optional[int] = None,
    check_witness: bool = False,
    view: Optional[ViewFn] = None,
    limit: Optional[int] = None,
    preemption_bound: Optional[int] = None,
    budget: Optional[ExploreBudget] = None,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    pin_prefix: Sequence[int] = (),
    reduction: str = "none",
    sleep_seed=None,
    provenance=None,
) -> VerificationReport:
    """Explore all runs of ``setup`` and check classic linearizability.

    With ``check_witness``, the recorded trace (viewed through ``view``)
    must consist of singleton elements forming a legal linearization that
    the history agrees with — the modular elimination-stack proof (E5)
    uses exactly this with ``view = F_ES``.

    Budgets degrade exactly as in :func:`verify_cal`: a budget-cut search
    falls back to witness validation (when a view is available) and the
    run counts as ``unknown``.  ``metrics``/``trace``/``coverage``/
    ``progress_every``/``pin_prefix``/``reduction``/``sleep_seed``/
    ``provenance`` behave as in :func:`verify_cal`.
    """
    from repro.checkers.fuzz import _campaign_ledger

    validate_exploration(reduction, preemption_bound=preemption_bound)
    checker = LinearizabilityChecker(spec)
    report = VerificationReport(budget=budget)
    campaign = type(metrics)() if metrics is not None else None
    audit = _campaign_ledger(provenance)
    started = time.monotonic()
    attempted = 0
    if budget is not None:
        budget.start()
    if trace is not None:
        trace.emit("verify_begin", driver="verify_linearizability", oid=spec.oid)
    for run in explore_all(
        setup,
        max_steps=max_steps,
        limit=limit,
        preemption_bound=preemption_bound,
        budget=budget,
        pin_prefix=pin_prefix,
        reduction=reduction,
        sleep_seed=sleep_seed,
        provenance=audit,
    ):
        if campaign is not None:
            observe_run(campaign, run)
        position, attempted = attempted, attempted + 1
        if coverage is not None:
            coverage.observe_run(position, run.schedule, run.history, oid=spec.oid)
        if trace is not None and progress_every and attempted % progress_every == 0:
            live = {}
            if coverage is not None:
                live["distinct_histories"] = len(coverage.histories)
            trace.emit(
                "campaign_progress",
                driver="verify_linearizability",
                attempted=attempted,
                runs=report.runs + (1 if run.completed else 0),
                failures=len(report.failures),
                unknown=report.unknown,
                elapsed_s=time.monotonic() - started,
                **live,
            )
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        recorded = view(run.trace) if view is not None else run.trace
        witness = recorded.project_object(spec.oid)
        if coverage is not None:
            coverage.observe_spec_trace(spec, witness)
        witness_checked = False
        if check_witness:
            problem = _validate_singleton_witness(checker, history, witness)
            witness_checked = True
            if problem is not None:
                _record_failure(
                    report, run, witness, problem, spec.oid, max_steps
                )
                continue
        result = checker.check(
            history,
            node_budget=node_budget,
            deadline=deadline,
            metrics=campaign,
            trace=trace,
        )
        report.nodes += result.nodes
        if result.unknown:
            report.unknown += 1
            if not witness_checked and view is not None:
                problem = _validate_singleton_witness(
                    checker, history, witness
                )
                if problem is not None:
                    _record_failure(
                        report, run, witness, problem, spec.oid, max_steps
                    )
            continue
        if not result.ok:
            _record_failure(
                report, run, run.trace, result.reason, spec.oid, max_steps
            )
    if campaign is not None:
        report.stats = campaign.snapshot()
        metrics.merge(campaign)
    if coverage is not None:
        report.coverage = coverage.snapshot()
    if audit is not None:
        report.provenance = audit.snapshot()
        provenance.merge(audit)
    if trace is not None:
        trace.emit(
            "verify_end",
            driver="verify_linearizability",
            verdict=report.verdict.value,
            runs=report.runs,
            failures=len(report.failures),
            unknown=report.unknown,
        )
    return report


def _validate_singleton_witness(
    checker: LinearizabilityChecker,
    history: History,
    witness: CATrace,
) -> Optional[str]:
    """Check a recorded singleton trace is a valid linearization witness.

    Pending invocations (crashed threads) are resolved against the
    witness first, exactly as in CAL witness validation.
    """
    from repro.core.agreement import agrees

    if any(not e.is_singleton() for e in witness):
        return "witness contains non-singleton elements"
    ops = [e.single() for e in witness]
    if not checker.spec.accepts(ops):
        return "witness rejected by sequential spec"
    target = history.project_object(checker.spec.oid)
    if not target.is_complete():
        target = complete_from_witness(target, witness)
    if not target.is_complete():  # pragma: no cover — defensive
        return "history incomplete at witness validation"
    if not agrees(target, witness):
        return "history does not agree with witness (Def. 5)"
    return None

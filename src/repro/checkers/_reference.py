"""The pre-bitmask (seed) search core, preserved as a reference oracle.

This module is a faithful copy of the original frozenset-based
``_search.py`` plus the recursive ``_check_complete`` bodies of the two
checkers, kept for two purposes:

* **differential testing** — ``tests/test_search_core.py`` asserts
  verdict equality between this core and the bitmask core on random
  histories (hypothesis) and on the E12 scaling workloads;
* **benchmarking** — ``benchmarks/bench_e17_search_core.py`` measures
  the bitmask core's nodes/sec and wall-clock speedup against this
  implementation on identical inputs.

It is deliberately *not* exported from ``repro.checkers``: production
code must use :class:`~repro.checkers.cal.CALChecker` and
:class:`~repro.checkers.linearizability.LinearizabilityChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.checkers.cal import CALChecker
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.result import CheckResult, SearchBudget
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History


@dataclass(frozen=True)
class ReferenceSearchProblem:
    """Precomputed precedence structure — seed (frozenset) representation."""

    spans: Tuple
    predecessors: Tuple[FrozenSet[int], ...]

    @staticmethod
    def of(history: History) -> "ReferenceSearchProblem":
        if not history.is_complete():
            raise ValueError("search requires a complete history")
        spans = history.spans()
        preds: List[Set[int]] = [set() for _ in spans]
        for i, earlier in enumerate(spans):
            for j, later in enumerate(spans):
                if i != j and history.precedes(earlier, later):
                    preds[j].add(i)
        return ReferenceSearchProblem(
            spans=spans,
            predecessors=tuple(frozenset(p) for p in preds),
        )

    def frontier(self, taken: FrozenSet[int]) -> List[int]:
        return [
            i
            for i in range(len(self.spans))
            if i not in taken and self.predecessors[i] <= taken
        ]

    def __len__(self) -> int:
        return len(self.spans)


def reference_nonempty_subsets(items: Sequence[int]) -> List[Tuple[int, ...]]:
    """Seed behaviour: eagerly materialize all 2^n − 1 subsets, sort by size."""
    out: List[Tuple[int, ...]] = []
    n = len(items)
    for mask in range(1, 1 << n):
        out.append(tuple(items[k] for k in range(n) if mask & (1 << k)))
    out.sort(key=len)
    return out


class ReferenceCALChecker(CALChecker):
    """CAL checker running the seed recursive frozenset search."""

    def _check_complete(
        self,
        history: History,
        budget: Optional[SearchBudget] = None,
        metrics=None,
    ) -> CheckResult:
        # The reference search is a differential-testing oracle only; it
        # does not record search metrics.

        problem = ReferenceSearchProblem.of(history)
        total = len(problem)
        seen: Set[Tuple[FrozenSet[int], Hashable]] = set()
        elements: List[CAElement] = []
        nodes = 0

        def dfs(taken: FrozenSet[int], state: Hashable) -> bool:
            nonlocal nodes
            nodes += 1
            if budget is not None:
                budget.charge()
            if len(taken) == total:
                return True
            key = (taken, state)
            if key in seen:
                return False
            seen.add(key)
            frontier = problem.frontier(taken)
            for subset in reference_nonempty_subsets(frontier):
                ops = [problem.spans[i].operation for i in subset]
                element = CAElement(self.spec.oid, ops)  # type: ignore[arg-type]
                successor = self.spec.step(state, element)
                if successor is None:
                    continue
                elements.append(element)
                if dfs(taken | set(subset), successor):
                    return True
                elements.pop()
            return False

        if dfs(frozenset(), self.spec.initial()):
            witness = CATrace(list(elements))
            return CheckResult(
                True, witness=witness, completion=history, nodes=nodes
            )
        return CheckResult(
            False, reason="no agreeing CA-trace found", nodes=nodes
        )


class ReferenceLinearizabilityChecker(LinearizabilityChecker):
    """Linearizability checker running the seed recursive search."""

    def _check_complete(
        self,
        history: History,
        budget: Optional[SearchBudget] = None,
        metrics=None,
    ) -> CheckResult:
        # The reference search is a differential-testing oracle only; it
        # does not record search metrics.

        problem = ReferenceSearchProblem.of(history)
        total = len(problem)
        seen: Set[Tuple[FrozenSet[int], Hashable]] = set()
        order: List[int] = []
        nodes = 0

        def dfs(taken: FrozenSet[int], state: Hashable) -> bool:
            nonlocal nodes
            nodes += 1
            if budget is not None:
                budget.charge()
            if len(taken) == total:
                return True
            key = (taken, state)
            if key in seen:
                return False
            seen.add(key)
            for index in problem.frontier(taken):
                op = problem.spans[index].operation
                assert op is not None
                successor = self.spec.apply(state, op)
                if successor is None:
                    continue
                order.append(index)
                if dfs(taken | {index}, successor):
                    return True
                order.pop()
            return False

        if dfs(frozenset(), self.spec.initial()):
            ops = [problem.spans[i].operation for i in order]
            witness = CATrace(
                CAElement(op.oid, [op]) for op in ops if op is not None
            )
            return CheckResult(
                True, witness=witness, completion=history, nodes=nodes
            )
        return CheckResult(
            False, reason="no linearization found", nodes=nodes
        )

"""Set-linearizability (Neiger [18], discussed in §6).

Neiger's set-linearizability linearizes concurrent operations against a
sequence of *sets* of simultaneous operations.  Modulo presentation, its
witnesses coincide with CA-traces of a single object: CAL's Definitions
4–6 are (as the paper notes) a formalization and generalization of
Neiger's proposal — Neiger gave neither a formal definition nor a proof
technique; the paper supplies both, plus object-modular specifications.

Operationally, a set-linearizability check *is* a CAL check, so this
checker is a thin veneer over :class:`~repro.checkers.cal.CALChecker`.
It exists (a) to make experiment E8 read like the related-work it
reproduces and (b) to host the set-sequential-spec helper
:class:`BlockSpec`, which builds a CA-spec from a predicate over blocks
and an initial state — the idiom of Neiger-style specifications such as
the immediate snapshot's.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.checkers.cal import CALChecker
from repro.checkers.caspec import CASpec
from repro.core.catrace import CAElement


class BlockSpec(CASpec):
    """A CA-spec given by an initial state and a block transition function.

    ``transition(state, element)`` returns the successor state or ``None``
    — exactly :meth:`CASpec.step`, but packaged as a plain function so
    Neiger-style set-sequential specs can be written inline.
    """

    def __init__(
        self,
        oid: str,
        initial_state: Hashable,
        transition: Callable[[Hashable, CAElement], Optional[Hashable]],
    ) -> None:
        super().__init__(oid)
        self._initial = initial_state
        self._transition = transition

    def initial(self) -> Hashable:
        return self._initial

    def step(self, state: Hashable, element: CAElement) -> Optional[Hashable]:
        return self._transition(state, element)


class SetLinearizabilityChecker(CALChecker):
    """Set-linearizability = CAL over a single object's CA-spec."""

"""Concurrency-aware specifications (§4).

A CA-spec is a transition system over *CA-elements*: ``step(state,
element)`` returns the successor state when the element — a set of
operations that seem to take effect simultaneously — is legal from
``state``, and ``None`` otherwise.  The denoted set of CA-traces is the
prefix-closed set of legal paths from ``initial()``.

Example: the exchanger's spec has a single (trivial) state, and a legal
element is either a matched swap pair or a failed singleton — see
:class:`repro.specs.exchanger_spec.ExchangerSpec`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.actions import Invocation
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History


class CASpec(ABC):
    """Base class for concurrency-aware object specifications."""

    def __init__(self, oid: str) -> None:
        self.oid = oid

    @abstractmethod
    def initial(self) -> Hashable:
        """The initial abstract state."""

    @abstractmethod
    def step(
        self, state: Hashable, element: CAElement
    ) -> Optional[Hashable]:
        """Successor state if ``element`` is legal from ``state``."""

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        """Return values worth trying when completing pending invocations."""
        return ()

    def response_candidates_in(
        self, invocation: Invocation, history: "History"
    ) -> Iterable[Tuple[Any, ...]]:
        """Context-aware variant: completions may depend on the rest of
        the history (e.g. a pending exchange can only complete
        *successfully* with the value of some other exchange present in
        the history).  Defaults to the context-free candidates."""
        return self.response_candidates(invocation)

    def accepts(self, trace: CATrace | Sequence[CAElement]) -> bool:
        """Whether the CA-trace is in the specification."""
        state = self.initial()
        for element in trace:
            if element.oid != self.oid:
                return False
            state = self.step(state, element)
            if state is None:
                return False
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.oid!r})"

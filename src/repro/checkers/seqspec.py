"""Sequential specifications.

A sequential specification is a deterministic-state transition system over
*operations*: ``apply(state, op)`` returns the successor state when ``op``
is a legal next operation (its arguments *and* its result are consistent
with ``state``) and ``None`` otherwise.  The set of histories it denotes
is the prefix-closed set of sequential histories whose operation sequence
is a legal path from ``initial()``.

States must be hashable: the checkers memoize on (progress, state).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.actions import Invocation, Operation
from repro.core.history import History


class SequentialSpec(ABC):
    """Base class for sequential object specifications."""

    def __init__(self, oid: str) -> None:
        self.oid = oid

    @abstractmethod
    def initial(self) -> Hashable:
        """The initial abstract state."""

    @abstractmethod
    def apply(self, state: Hashable, op: Operation) -> Optional[Hashable]:
        """Successor state if ``op`` is legal from ``state``, else ``None``."""

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        """Return values worth trying when completing a pending invocation
        (Def. 2's ``complete(H)``).  Default: none, i.e. pending
        invocations can only be dropped."""
        return ()

    def response_candidates_in(
        self, invocation: Invocation, history: "History"
    ) -> Iterable[Tuple[Any, ...]]:
        """Context-aware variant of :meth:`response_candidates`; see
        :meth:`repro.checkers.caspec.CASpec.response_candidates_in`."""
        return self.response_candidates(invocation)

    def accepts(self, ops: Sequence[Operation]) -> bool:
        """Whether the operation sequence is a legal sequential history."""
        state = self.initial()
        for op in ops:
            state = self.apply(state, op)
            if state is None:
                return False
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.oid!r})"

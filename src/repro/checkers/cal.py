"""The CAL checker (Definitions 5 and 6).

Decides whether a history is concurrency-aware linearizable w.r.t. a
CA-spec, by searching for a CA-trace in the spec that the (completed)
history agrees with.

The search works directly from the structure of Def. 5: process the
history's operations in rounds, each round emitting one CA-element.
Candidates for a round are the non-empty subsets of the current
*frontier* (operations whose every real-time predecessor has already been
emitted) — frontier operations are pairwise concurrent by construction,
so any subset is a legal CA-element as far as the real-time order is
concerned; the spec's ``step`` decides which subsets are semantically
admissible.  Memoization on (emitted-set, spec-state) keeps the search
polynomial in practice for the small widths that matter.

:meth:`CALChecker.check_witness` validates a *recorded* trace (the
auxiliary variable ``T`` of §4, projected/viewed for the object) instead
of searching: the instrumentation's witness must (a) be in the spec and
(b) agree with the observed history.  This is the executable counterpart
of the paper's proof technique — the proofs establish exactly that the
instrumented assignments always produce such a witness.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.checkers.caspec import CASpec
from repro.checkers.result import CheckResult, SearchBudget, Verdict
from repro.checkers._search import (
    SearchProblem,
    flush_search_tallies,
    iter_bits,
    structural_key,
    subset_masks,
)
from repro.core.actions import Invocation, Operation
from repro.core.agreement import agrees
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History
from repro.substrate.errors import BudgetExceeded


def complete_from_witness(history: History, trace: CATrace) -> History:
    """Resolve a crash run's pending invocations against a recorded witness.

    A thread that died mid-operation leaves a pending invocation in ``H``.
    The instrumentation's trace ``T`` already says what became of it: if
    the witness contains an operation for the invocation (e.g. the partner
    *did* complete the swap before the thread died), the invocation is
    extended with that operation's response; otherwise the operation never
    took effect and the invocation is dropped.  This is the deterministic
    ``complete(H)`` choice dictated by the witness — linear, no search.

    Matching is positional per signature: a witness operation is only
    used to complete the pending invocation if the history does not
    already contain enough completed operations of the same
    ``(tid, oid, method, args)`` to account for it.  The signature maps
    are built once, so each pending invocation resolves in O(1) instead
    of rescanning all operations of ``H`` and ``T``.
    """
    if not history.pending_invocations():
        return history

    def signature(op) -> Tuple:
        return (op.tid, op.oid, op.method, op.args)

    completed_counts = Counter(signature(op) for op in history.operations())
    trace_index: Dict[Tuple, List[Operation]] = {}
    for element in trace:
        for op in element.operations:
            trace_index.setdefault(signature(op), []).append(op)

    def resolver(invocation: Invocation):
        key = (invocation.tid, invocation.oid, invocation.method, invocation.args)
        already = completed_counts[key]
        matches = trace_index.get(key, ())
        if len(matches) > already:
            return matches[already].value
        return None

    return history.complete_with(resolver)


class CALChecker:
    """Decides ``H`` CAL w.r.t. a CA-spec (Def. 6)."""

    def __init__(self, spec: CASpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def check(
        self,
        history: History,
        project: bool = True,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        metrics=None,
        trace=None,
    ) -> CheckResult:
        """Search for a spec CA-trace that some completion agrees with.

        ``node_budget``/``deadline`` bound the search across *all*
        completions; when either trips, the result is ``UNKNOWN`` rather
        than a hang (see :class:`~repro.checkers.result.Verdict`).

        ``metrics``/``trace`` (see :mod:`repro.obs`) record search
        statistics and phase events; both default off, and neither can
        change the verdict or the node count.
        """
        instrumented = metrics is not None or trace is not None
        started = time.perf_counter() if instrumented else 0.0
        if trace is not None:
            trace.emit(
                "check_begin",
                checker="cal",
                oid=self.spec.oid,
                actions=len(history),
            )
        result = self._check_impl(history, project, node_budget, deadline, metrics, trace)
        if metrics is not None:
            metrics.count("cal.checks")
            if result.unknown:
                metrics.count("cal.unknown")
            elif not result.ok:
                metrics.count("cal.failures")
            metrics.add_time("cal.check_s", time.perf_counter() - started)
        if trace is not None:
            trace.emit(
                "check_end",
                checker="cal",
                oid=self.spec.oid,
                verdict=result.verdict.value,
                nodes=result.nodes,
                reason=result.reason,
            )
        return result

    def _check_impl(
        self,
        history: History,
        project: bool,
        node_budget: Optional[int],
        deadline: Optional[float],
        metrics,
        trace,
    ) -> CheckResult:
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        if any(action.oid != self.spec.oid for action in target):
            # Def. 5: a CA-trace of this object can only explain this
            # object's operations.
            return CheckResult(
                False, reason="history contains other objects' operations"
            )
        budget = SearchBudget(node_budget=node_budget, deadline=deadline)
        best = CheckResult(False, reason="no agreeing CA-trace found")
        candidates = lambda inv: self.spec.response_candidates_in(inv, target)
        # Structural-cache counters are deliberately *per-call*: a repeat
        # shape within one check is a guaranteed cache hit and a pure
        # function of the history, so the counts stay deterministic (the
        # warm process-wide cache can only do better — see
        # repro.checkers._search.mask_cache_stats for that diagnostic).
        shapes: Set[Tuple[Tuple[int, int], ...]] = set()
        if metrics is not None:
            begin_check = getattr(metrics, "begin_check", None)
            if begin_check is not None:
                begin_check("cal", self.spec.oid)
            enter_completion = getattr(metrics, "enter_completion", None)
        try:
            for completion in target.completions(candidates):
                if metrics is not None:
                    metrics.count("cal.completions")
                    shape = structural_key(completion.spans())
                    if shape in shapes:
                        metrics.count("search.structural_cache_hits")
                    else:
                        shapes.add(shape)
                        metrics.count("search.structural_cache_misses")
                    if enter_completion is not None:
                        enter_completion(len(completion.spans()))
                result = self._check_complete(completion, budget, metrics)
                best.nodes += result.nodes
                if result.ok:
                    result.nodes = best.nodes
                    return result
        except BudgetExceeded as exceeded:
            if metrics is not None:
                metrics.count("search.budget_trips")
            if trace is not None:
                trace.emit(
                    "budget_trip",
                    checker="cal",
                    reason=str(exceeded),
                    nodes=budget.nodes,
                )
            return CheckResult(
                False,
                nodes=budget.nodes,
                reason=str(exceeded),
                verdict=Verdict.UNKNOWN,
            )
        return best

    # ------------------------------------------------------------------
    def _check_complete(
        self,
        history: History,
        budget: Optional[SearchBudget] = None,
        metrics=None,
    ) -> CheckResult:
        """Explicit-stack DFS over (taken-mask, spec-state) nodes.

        Taken-sets are int bitmasks; spec states are interned to small
        ids so memo keys are ``(int, int)`` pairs; frontiers update
        incrementally through the problem's successor masks; candidate
        CA-elements come from the lazy popcount-ordered subset stream.

        Search statistics are kept as local ints (the metrics-off path
        pays only the increments) and flushed once on every exit —
        including a budget trip — via ``flush_search_tallies``.
        """
        problem = SearchProblem.of(history, validate=False)
        full = problem.full_mask
        spans = problem.spans
        oid = self.spec.oid
        step = self.spec.step
        seen: Set[Tuple[int, int]] = set()
        state_ids: Dict[Hashable, int] = {}
        elements: List[CAElement] = []
        nodes = 1
        memo_hits = memo_misses = cand_tried = rejections = 0
        frames = 1
        frontier_sum = frontier_max = 0
        if budget is not None:
            budget.charge()

        initial = self.spec.initial()
        if full == 0:
            if metrics is not None:
                flush_search_tallies(metrics, nodes, 0, 0, 0, 0, 0, 0, 0)
            return CheckResult(
                True, witness=CATrace([]), completion=history, nodes=nodes
            )
        seen.add((0, state_ids.setdefault(initial, 0)))
        root_frontier = problem.frontier_mask(0)
        width = root_frontier.bit_count()
        frontier_sum += width
        frontier_max = width
        # Frame: (taken, frontier, state, pending-subset iterator).  The
        # CA-element chosen to reach a frame sits in ``elements`` at the
        # frame's depth − 1; popping a non-root frame pops it.
        stack = [(0, root_frontier, initial, subset_masks(root_frontier))]
        try:
            while stack:
                taken, frontier, state, candidates = stack[-1]
                pushed = False
                for subset in candidates:
                    cand_tried += 1
                    ops = [spans[i].operation for i in iter_bits(subset)]
                    element = CAElement(oid, ops)  # type: ignore[arg-type]
                    successor = step(state, element)
                    if successor is None:
                        rejections += 1
                        continue
                    nodes += 1
                    if budget is not None:
                        budget.charge()
                    elements.append(element)
                    new_taken = taken | subset
                    if new_taken == full:
                        return CheckResult(
                            True,
                            witness=CATrace(list(elements)),
                            completion=history,
                            nodes=nodes,
                        )
                    state_id = state_ids.setdefault(successor, len(state_ids))
                    key = (new_taken, state_id)
                    if key in seen:
                        memo_hits += 1
                        elements.pop()
                        continue
                    memo_misses += 1
                    seen.add(key)
                    new_frontier = problem.next_frontier(frontier, new_taken, subset)
                    frames += 1
                    width = new_frontier.bit_count()
                    frontier_sum += width
                    if width > frontier_max:
                        frontier_max = width
                    stack.append(
                        (new_taken, new_frontier, successor, subset_masks(new_frontier))
                    )
                    pushed = True
                    break
                if not pushed:
                    stack.pop()
                    if stack:
                        elements.pop()
            return CheckResult(
                False, reason="no agreeing CA-trace found", nodes=nodes
            )
        finally:
            if metrics is not None:
                flush_search_tallies(
                    metrics,
                    nodes,
                    memo_hits,
                    memo_misses,
                    cand_tried,
                    rejections,
                    frames,
                    frontier_sum,
                    frontier_max,
                )

    # ------------------------------------------------------------------
    def check_witness(
        self,
        history: History,
        trace: CATrace,
        project: bool = True,
        metrics=None,
    ) -> CheckResult:
        """Validate a recorded witness trace against the observed history.

        Checks (a) ``trace ∈ spec`` and (b) ``H ⊑_CAL trace`` (Def. 5).

        Pending invocations (crashed/stalled threads) are resolved against
        the witness first (:func:`complete_from_witness`): completed with
        the response the trace records for them, or dropped when the trace
        shows the operation never took effect.  A wait-free exchanger must
        stay CAL when its partner dies mid-exchange — this is where that
        is decided.
        """
        result = self._check_witness_impl(history, trace, project)
        if metrics is not None:
            metrics.count("cal.witness_checks")
            if not result.ok:
                metrics.count("cal.witness_failures")
        return result

    def _check_witness_impl(
        self, history: History, trace: CATrace, project: bool
    ) -> CheckResult:
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        if not target.is_complete():
            target = complete_from_witness(target, trace)
        if not target.is_complete():  # pragma: no cover — defensive
            return CheckResult(
                False, reason="witness validation needs a complete history"
            )
        if not self.spec.accepts(trace):
            return CheckResult(False, reason="witness not in specification")
        if not agrees(target, trace):
            return CheckResult(
                False, reason="history does not agree with witness (Def. 5)"
            )
        return CheckResult(True, witness=trace, completion=target)

"""The CAL checker (Definitions 5 and 6).

Decides whether a history is concurrency-aware linearizable w.r.t. a
CA-spec, by searching for a CA-trace in the spec that the (completed)
history agrees with.

The search works directly from the structure of Def. 5: process the
history's operations in rounds, each round emitting one CA-element.
Candidates for a round are the non-empty subsets of the current
*frontier* (operations whose every real-time predecessor has already been
emitted) — frontier operations are pairwise concurrent by construction,
so any subset is a legal CA-element as far as the real-time order is
concerned; the spec's ``step`` decides which subsets are semantically
admissible.  Memoization on (emitted-set, spec-state) keeps the search
polynomial in practice for the small widths that matter.

:meth:`CALChecker.check_witness` validates a *recorded* trace (the
auxiliary variable ``T`` of §4, projected/viewed for the object) instead
of searching: the instrumentation's witness must (a) be in the spec and
(b) agree with the observed history.  This is the executable counterpart
of the paper's proof technique — the proofs establish exactly that the
instrumented assignments always produce such a witness.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.checkers.caspec import CASpec
from repro.checkers.result import CheckResult
from repro.checkers._search import SearchProblem, nonempty_subsets
from repro.core.agreement import agrees
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History


class CALChecker:
    """Decides ``H`` CAL w.r.t. a CA-spec (Def. 6)."""

    def __init__(self, spec: CASpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def check(self, history: History, project: bool = True) -> CheckResult:
        """Search for a spec CA-trace that some completion agrees with."""
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        if any(action.oid != self.spec.oid for action in target):
            # Def. 5: a CA-trace of this object can only explain this
            # object's operations.
            return CheckResult(
                False, reason="history contains other objects' operations"
            )
        best = CheckResult(False, reason="no agreeing CA-trace found")
        candidates = lambda inv: self.spec.response_candidates_in(inv, target)
        for completion in target.completions(candidates):
            result = self._check_complete(completion)
            best.nodes += result.nodes
            if result.ok:
                result.nodes = best.nodes
                return result
        return best

    # ------------------------------------------------------------------
    def _check_complete(self, history: History) -> CheckResult:
        problem = SearchProblem.of(history)
        total = len(problem)
        seen: Set[Tuple[FrozenSet[int], Hashable]] = set()
        elements: List[CAElement] = []
        nodes = 0

        def dfs(taken: FrozenSet[int], state: Hashable) -> bool:
            nonlocal nodes
            nodes += 1
            if len(taken) == total:
                return True
            key = (taken, state)
            if key in seen:
                return False
            seen.add(key)
            frontier = problem.frontier(taken)
            for subset in nonempty_subsets(frontier):
                ops = [problem.spans[i].operation for i in subset]
                element = CAElement(self.spec.oid, ops)  # type: ignore[arg-type]
                successor = self.spec.step(state, element)
                if successor is None:
                    continue
                elements.append(element)
                if dfs(taken | set(subset), successor):
                    return True
                elements.pop()
            return False

        if dfs(frozenset(), self.spec.initial()):
            witness = CATrace(list(elements))
            return CheckResult(
                True, witness=witness, completion=history, nodes=nodes
            )
        return CheckResult(
            False, reason="no agreeing CA-trace found", nodes=nodes
        )

    # ------------------------------------------------------------------
    def check_witness(
        self, history: History, trace: CATrace, project: bool = True
    ) -> CheckResult:
        """Validate a recorded witness trace against the observed history.

        Checks (a) ``trace ∈ spec`` and (b) ``H ⊑_CAL trace`` (Def. 5).
        """
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_complete():
            return CheckResult(
                False, reason="witness validation needs a complete history"
            )
        if not self.spec.accepts(trace):
            return CheckResult(False, reason="witness not in specification")
        if not agrees(target, trace):
            return CheckResult(
                False, reason="history does not agree with witness (Def. 5)"
            )
        return CheckResult(True, witness=trace, completion=target)

"""Classic linearizability (Herlihy & Wing [12]) via Wing–Gong search.

A complete history is linearizable w.r.t. a sequential specification if
some total order of its operations (a) extends the real-time order and
(b) is a legal path of the spec.  The checker performs a DFS over
"minimal" (frontier) operations with memoization on (taken-set, state) —
the standard Wing–Gong/Lowe algorithm.

For histories with pending invocations, every completion (Def. 2) is
tried: pending invocations are dropped or completed with responses
suggested by ``spec.response_candidates``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.checkers.result import CheckResult, SearchBudget, Verdict
from repro.checkers.seqspec import SequentialSpec
from repro.checkers._search import SearchProblem, iter_bits
from repro.core.actions import Operation
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History
from repro.substrate.errors import BudgetExceeded


class LinearizabilityChecker:
    """Decides ``H`` linearizable w.r.t. a sequential spec."""

    def __init__(self, spec: SequentialSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def check(
        self,
        history: History,
        project: bool = True,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> CheckResult:
        """Check ``history`` (projected to the spec's object by default).

        ``node_budget``/``deadline`` bound the search across *all*
        completions; when either trips, the result is ``UNKNOWN`` rather
        than a hang (see :class:`~repro.checkers.result.Verdict`).
        """
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        budget = SearchBudget(node_budget=node_budget, deadline=deadline)
        best = CheckResult(False, reason="no linearization found")
        candidates = lambda inv: self.spec.response_candidates_in(inv, target)
        try:
            for completion in target.completions(candidates):
                result = self._check_complete(completion, budget)
                best.nodes += result.nodes
                if result.ok:
                    result.nodes = best.nodes
                    return result
        except BudgetExceeded as exceeded:
            return CheckResult(
                False,
                nodes=budget.nodes,
                reason=str(exceeded),
                verdict=Verdict.UNKNOWN,
            )
        return best

    # ------------------------------------------------------------------
    def _check_complete(
        self, history: History, budget: Optional[SearchBudget] = None
    ) -> CheckResult:
        """Explicit-stack Wing–Gong search over (taken-mask, state) nodes.

        Taken-sets are int bitmasks, spec states are interned to small
        ids (memo keys are ``(int, int)`` pairs), and the frontier of
        minimal operations updates incrementally via successor masks.
        """
        problem = SearchProblem.of(history, validate=False)
        full = problem.full_mask
        spans = problem.spans
        apply = self.spec.apply
        seen: Set[Tuple[int, int]] = set()
        state_ids: Dict[Hashable, int] = {}
        order: List[int] = []
        nodes = 1
        if budget is not None:
            budget.charge()

        initial = self.spec.initial()
        if full == 0:
            return CheckResult(
                True, witness=CATrace([]), completion=history, nodes=nodes
            )
        seen.add((0, state_ids.setdefault(initial, 0)))
        root_frontier = problem.frontier_mask(0)
        # Frame: (taken, frontier, state, pending-candidate iterator).
        stack = [(0, root_frontier, initial, iter_bits(root_frontier))]
        while stack:
            taken, frontier, state, candidates = stack[-1]
            pushed = False
            for index in candidates:
                op = spans[index].operation
                assert op is not None
                successor = apply(state, op)
                if successor is None:
                    continue
                nodes += 1
                if budget is not None:
                    budget.charge()
                order.append(index)
                new_taken = taken | (1 << index)
                if new_taken == full:
                    ops = [spans[i].operation for i in order]
                    witness = CATrace(
                        CAElement(op.oid, [op]) for op in ops if op is not None
                    )
                    return CheckResult(
                        True, witness=witness, completion=history, nodes=nodes
                    )
                state_id = state_ids.setdefault(successor, len(state_ids))
                key = (new_taken, state_id)
                if key in seen:
                    order.pop()
                    continue
                seen.add(key)
                new_frontier = problem.next_frontier(
                    frontier, new_taken, 1 << index
                )
                stack.append(
                    (new_taken, new_frontier, successor, iter_bits(new_frontier))
                )
                pushed = True
                break
            if not pushed:
                stack.pop()
                if stack:
                    order.pop()
        return CheckResult(
            False, reason="no linearization found", nodes=nodes
        )

    # ------------------------------------------------------------------
    def check_order(self, history: History, order: List[Operation]) -> bool:
        """Validate an explicitly proposed linearization order: it must be
        a permutation of the history's operations, extend the real-time
        order, and be accepted by the spec."""
        target = history.project_object(self.spec.oid)
        if not target.is_complete():
            return False
        witness = CATrace(CAElement(op.oid, [op]) for op in order)
        from repro.core.agreement import agrees  # local import, no cycle

        return self.spec.accepts(order) and agrees(target, witness)

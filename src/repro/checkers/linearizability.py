"""Classic linearizability (Herlihy & Wing [12]) via Wing–Gong search.

A complete history is linearizable w.r.t. a sequential specification if
some total order of its operations (a) extends the real-time order and
(b) is a legal path of the spec.  The checker performs a DFS over
"minimal" (frontier) operations with memoization on (taken-set, state) —
the standard Wing–Gong/Lowe algorithm.

For histories with pending invocations, every completion (Def. 2) is
tried: pending invocations are dropped or completed with responses
suggested by ``spec.response_candidates``.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.checkers.result import CheckResult, SearchBudget, Verdict
from repro.checkers.seqspec import SequentialSpec
from repro.checkers._search import (
    SearchProblem,
    flush_search_tallies,
    iter_bits,
    structural_key,
)
from repro.core.actions import Operation
from repro.core.catrace import CAElement, CATrace
from repro.core.history import History
from repro.substrate.errors import BudgetExceeded


class LinearizabilityChecker:
    """Decides ``H`` linearizable w.r.t. a sequential spec."""

    def __init__(self, spec: SequentialSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def check(
        self,
        history: History,
        project: bool = True,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        metrics=None,
        trace=None,
    ) -> CheckResult:
        """Check ``history`` (projected to the spec's object by default).

        ``node_budget``/``deadline`` bound the search across *all*
        completions; when either trips, the result is ``UNKNOWN`` rather
        than a hang (see :class:`~repro.checkers.result.Verdict`).

        ``metrics``/``trace`` (see :mod:`repro.obs`) record search
        statistics and phase events; both default off, and neither can
        change the verdict or the node count.
        """
        instrumented = metrics is not None or trace is not None
        started = time.perf_counter() if instrumented else 0.0
        if trace is not None:
            trace.emit(
                "check_begin",
                checker="lin",
                oid=self.spec.oid,
                actions=len(history),
            )
        result = self._check_impl(history, project, node_budget, deadline, metrics, trace)
        if metrics is not None:
            metrics.count("lin.checks")
            if result.unknown:
                metrics.count("lin.unknown")
            elif not result.ok:
                metrics.count("lin.failures")
            metrics.add_time("lin.check_s", time.perf_counter() - started)
        if trace is not None:
            trace.emit(
                "check_end",
                checker="lin",
                oid=self.spec.oid,
                verdict=result.verdict.value,
                nodes=result.nodes,
                reason=result.reason,
            )
        return result

    def _check_impl(
        self,
        history: History,
        project: bool,
        node_budget: Optional[int],
        deadline: Optional[float],
        metrics,
        trace,
    ) -> CheckResult:
        target = history.project_object(self.spec.oid) if project else history
        if not target.is_well_formed():
            return CheckResult(False, reason="ill-formed history")
        budget = SearchBudget(node_budget=node_budget, deadline=deadline)
        best = CheckResult(False, reason="no linearization found")
        candidates = lambda inv: self.spec.response_candidates_in(inv, target)
        # Per-call structural dedup — deterministic, unlike the warm
        # process-wide mask cache (see repro.checkers._search).
        shapes: Set[Tuple[Tuple[int, int], ...]] = set()
        if metrics is not None:
            begin_check = getattr(metrics, "begin_check", None)
            if begin_check is not None:
                begin_check("lin", self.spec.oid)
            enter_completion = getattr(metrics, "enter_completion", None)
        try:
            for completion in target.completions(candidates):
                if metrics is not None:
                    metrics.count("lin.completions")
                    shape = structural_key(completion.spans())
                    if shape in shapes:
                        metrics.count("search.structural_cache_hits")
                    else:
                        shapes.add(shape)
                        metrics.count("search.structural_cache_misses")
                    if enter_completion is not None:
                        enter_completion(len(completion.spans()))
                result = self._check_complete(completion, budget, metrics)
                best.nodes += result.nodes
                if result.ok:
                    result.nodes = best.nodes
                    return result
        except BudgetExceeded as exceeded:
            if metrics is not None:
                metrics.count("search.budget_trips")
            if trace is not None:
                trace.emit(
                    "budget_trip",
                    checker="lin",
                    reason=str(exceeded),
                    nodes=budget.nodes,
                )
            return CheckResult(
                False,
                nodes=budget.nodes,
                reason=str(exceeded),
                verdict=Verdict.UNKNOWN,
            )
        return best

    # ------------------------------------------------------------------
    def _check_complete(
        self,
        history: History,
        budget: Optional[SearchBudget] = None,
        metrics=None,
    ) -> CheckResult:
        """Explicit-stack Wing–Gong search over (taken-mask, state) nodes.

        Taken-sets are int bitmasks, spec states are interned to small
        ids (memo keys are ``(int, int)`` pairs), and the frontier of
        minimal operations updates incrementally via successor masks.

        Search statistics are local ints flushed once on every exit
        (budget trips included) via ``flush_search_tallies``.
        """
        problem = SearchProblem.of(history, validate=False)
        full = problem.full_mask
        spans = problem.spans
        apply = self.spec.apply
        seen: Set[Tuple[int, int]] = set()
        state_ids: Dict[Hashable, int] = {}
        order: List[int] = []
        nodes = 1
        memo_hits = memo_misses = cand_tried = rejections = 0
        frames = 1
        frontier_sum = frontier_max = 0
        if budget is not None:
            budget.charge()

        initial = self.spec.initial()
        if full == 0:
            if metrics is not None:
                flush_search_tallies(metrics, nodes, 0, 0, 0, 0, 0, 0, 0)
            return CheckResult(
                True, witness=CATrace([]), completion=history, nodes=nodes
            )
        seen.add((0, state_ids.setdefault(initial, 0)))
        root_frontier = problem.frontier_mask(0)
        width = root_frontier.bit_count()
        frontier_sum += width
        frontier_max = width
        # Frame: (taken, frontier, state, pending-candidate iterator).
        stack = [(0, root_frontier, initial, iter_bits(root_frontier))]
        try:
            while stack:
                taken, frontier, state, candidates = stack[-1]
                pushed = False
                for index in candidates:
                    cand_tried += 1
                    op = spans[index].operation
                    assert op is not None
                    successor = apply(state, op)
                    if successor is None:
                        rejections += 1
                        continue
                    nodes += 1
                    if budget is not None:
                        budget.charge()
                    order.append(index)
                    new_taken = taken | (1 << index)
                    if new_taken == full:
                        ops = [spans[i].operation for i in order]
                        witness = CATrace(
                            CAElement(op.oid, [op]) for op in ops if op is not None
                        )
                        return CheckResult(
                            True, witness=witness, completion=history, nodes=nodes
                        )
                    state_id = state_ids.setdefault(successor, len(state_ids))
                    key = (new_taken, state_id)
                    if key in seen:
                        memo_hits += 1
                        order.pop()
                        continue
                    memo_misses += 1
                    seen.add(key)
                    new_frontier = problem.next_frontier(
                        frontier, new_taken, 1 << index
                    )
                    frames += 1
                    width = new_frontier.bit_count()
                    frontier_sum += width
                    if width > frontier_max:
                        frontier_max = width
                    stack.append(
                        (new_taken, new_frontier, successor, iter_bits(new_frontier))
                    )
                    pushed = True
                    break
                if not pushed:
                    stack.pop()
                    if stack:
                        order.pop()
            return CheckResult(
                False, reason="no linearization found", nodes=nodes
            )
        finally:
            if metrics is not None:
                flush_search_tallies(
                    metrics,
                    nodes,
                    memo_hits,
                    memo_misses,
                    cand_tried,
                    rejections,
                    frames,
                    frontier_sum,
                    frontier_max,
                )

    # ------------------------------------------------------------------
    def check_order(self, history: History, order: List[Operation]) -> bool:
        """Validate an explicitly proposed linearization order: it must be
        a permutation of the history's operations, extend the real-time
        order, and be accepted by the spec."""
        target = history.project_object(self.spec.oid)
        if not target.is_complete():
            return False
        witness = CATrace(CAElement(op.oid, [op]) for op in order)
        from repro.core.agreement import agrees  # local import, no cycle

        return self.spec.accepts(order) and agrees(target, witness)

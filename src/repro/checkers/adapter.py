"""Sequential specs as CA-specs (§3).

"Sequential histories can be seen as CA-traces whose elements are all
singletons."  :class:`SingletonAdapter` realizes that observation: it
lifts a :class:`~repro.checkers.seqspec.SequentialSpec` into a
:class:`~repro.checkers.caspec.CASpec` that accepts exactly the singleton
CA-traces whose operation sequence the sequential spec accepts.

Consequences (validated by experiment E7):

* classic linearizability w.r.t. ``S`` ⇔ CAL w.r.t. ``SingletonAdapter(S)``;
* the CAL checker and the Wing–Gong checker agree on every history of a
  non-CA object.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.checkers.caspec import CASpec
from repro.checkers.seqspec import SequentialSpec
from repro.core.actions import Invocation
from repro.core.catrace import CAElement


class SingletonAdapter(CASpec):
    """The CA-spec of singleton elements induced by a sequential spec."""

    def __init__(self, seq_spec: SequentialSpec) -> None:
        super().__init__(seq_spec.oid)
        self.seq_spec = seq_spec

    def initial(self) -> Hashable:
        return self.seq_spec.initial()

    def step(self, state: Hashable, element: CAElement) -> Optional[Hashable]:
        if not element.is_singleton():
            return None
        return self.seq_spec.apply(state, element.single())

    def response_candidates(
        self, invocation: Invocation
    ) -> Iterable[Tuple[Any, ...]]:
        return self.seq_spec.response_candidates(invocation)

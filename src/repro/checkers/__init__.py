"""Checkers deciding membership in the paper's correctness conditions.

* :mod:`repro.checkers.seqspec` — sequential specifications (state +
  ``apply``), the currency of classic linearizability.
* :mod:`repro.checkers.caspec` — concurrency-aware specifications (state +
  ``step`` over CA-elements), the currency of CAL (§4).
* :mod:`repro.checkers.adapter` — every sequential spec is a CA-spec with
  singleton elements (§3); the bridge used by experiment E7.
* :mod:`repro.checkers.linearizability` — classic Herlihy–Wing
  linearizability via Wing–Gong style search.
* :mod:`repro.checkers.cal` — the CAL checker: searches for a CA-trace of
  the spec agreeing with the history (Def. 5/6), and validates recorded
  witness traces produced by instrumentation.
* :mod:`repro.checkers.setlin` — set-linearizability (Neiger, §6).
* :mod:`repro.checkers.intervallin` — interval-linearizability
  (Castañeda et al., §6), strictly more expressive than CAL.
* :mod:`repro.checkers.verify` — whole-program drivers: explore all
  interleavings of a program and check every run.
* :mod:`repro.checkers.fuzz` — randomized (seeded-schedule) drivers for
  workloads beyond exhaustive reach.
* :mod:`repro.checkers.parallel` — multiprocessing campaign runner:
  fuzz seed ranges and explore shards fanned across workers with
  deterministic merging (see ``docs/checkers.md``).
"""

from repro.checkers.seqspec import SequentialSpec
from repro.checkers.caspec import CASpec
from repro.checkers.adapter import SingletonAdapter
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.cal import CALChecker, complete_from_witness
from repro.checkers.result import CheckResult, SearchBudget, Verdict
from repro.checkers.setlin import SetLinearizabilityChecker
from repro.checkers.intervallin import IntervalLinearizabilityChecker
from repro.checkers.verify import (
    VerificationReport,
    verify_cal,
    verify_linearizability,
)
from repro.checkers.fuzz import (
    FuzzFailure,
    FuzzReport,
    fuzz_cal,
    fuzz_linearizability,
    replay,
    shrink_failure,
)
from repro.checkers.parallel import (
    explore_parallel,
    fuzz_cal_parallel,
    fuzz_linearizability_parallel,
)

__all__ = [
    "CALChecker",
    "CASpec",
    "CheckResult",
    "FuzzFailure",
    "FuzzReport",
    "IntervalLinearizabilityChecker",
    "LinearizabilityChecker",
    "SearchBudget",
    "SequentialSpec",
    "SetLinearizabilityChecker",
    "SingletonAdapter",
    "VerificationReport",
    "Verdict",
    "complete_from_witness",
    "explore_parallel",
    "fuzz_cal",
    "fuzz_cal_parallel",
    "fuzz_linearizability",
    "fuzz_linearizability_parallel",
    "replay",
    "shrink_failure",
    "verify_cal",
    "verify_linearizability",
]

"""Randomized (fuzz) verification drivers.

Exhaustive exploration is exact but bounded to small thread counts;
these drivers sample seeded random schedules instead, which scales to
wider workloads (4+ threads, longer scripts) at the price of
probabilistic coverage.  Every failure still comes with its seed, so
counterexamples reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.checkers.cal import CALChecker
from repro.checkers.caspec import CASpec
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.seqspec import SequentialSpec
from repro.checkers.verify import ViewFn
from repro.core.history import History
from repro.substrate.explore import SetupFn, run_random


@dataclass
class FuzzFailure:
    """One seeded run that violated the specification."""

    seed: int
    history: History
    reason: str

    def __repr__(self) -> str:
        return f"FuzzFailure(seed={self.seed}, {self.reason})"


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing campaign."""

    runs: int = 0
    incomplete: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.runs > 0 and not self.failures

    def __repr__(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        return (
            f"FuzzReport({verdict}, runs={self.runs}, "
            f"cut={self.incomplete})"
        )


def fuzz_cal(
    setup: SetupFn,
    spec: CASpec,
    seeds: Sequence[int] = range(50),
    max_steps: Optional[int] = 5000,
    check_witness: bool = True,
    search: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
) -> FuzzReport:
    """Sample random schedules and check CAL on each complete run.

    Defaults favour witness validation (linear per run) over search,
    since fuzzing targets workloads where search would dominate.
    """
    checker = CALChecker(spec)
    report = FuzzReport()
    for seed in seeds:
        run = run_random(
            setup, seed=seed, max_steps=max_steps, yield_bias=yield_bias
        )
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        if check_witness:
            trace = view(run.trace) if view is not None else run.trace
            witness = trace.project_object(spec.oid)
            result = checker.check_witness(history, witness)
            if not result.ok:
                report.failures.append(
                    FuzzFailure(seed, history, result.reason)
                )
                continue
        if search:
            result = checker.check(history)
            if not result.ok:
                report.failures.append(
                    FuzzFailure(seed, history, result.reason)
                )
    return report


def fuzz_linearizability(
    setup: SetupFn,
    spec: SequentialSpec,
    seeds: Sequence[int] = range(50),
    max_steps: Optional[int] = 5000,
    check_witness: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
) -> FuzzReport:
    """Sample random schedules and check linearizability on each run."""
    checker = LinearizabilityChecker(spec)
    report = FuzzReport()
    for seed in seeds:
        run = run_random(
            setup, seed=seed, max_steps=max_steps, yield_bias=yield_bias
        )
        if not run.completed:
            report.incomplete += 1
            continue
        report.runs += 1
        history = run.history
        if check_witness:
            from repro.checkers.verify import _validate_singleton_witness

            trace = view(run.trace) if view is not None else run.trace
            witness = trace.project_object(spec.oid)
            problem = _validate_singleton_witness(checker, history, witness)
            if problem is not None:
                report.failures.append(FuzzFailure(seed, history, problem))
                continue
        result = checker.check(history)
        if not result.ok:
            report.failures.append(
                FuzzFailure(seed, history, result.reason)
            )
    return report

"""Randomized (fuzz) verification drivers.

Exhaustive exploration is exact but bounded to small thread counts;
these drivers sample seeded random schedules instead, which scales to
wider workloads (4+ threads, longer scripts) at the price of
probabilistic coverage.

Every failure carries its seed, its full decision ``schedule`` (so
counterexamples replay via :func:`replay` without re-deriving them from
the seed), and the :class:`~repro.substrate.faults.FaultPlan` that was
active, if any.  Campaigns optionally inject faults
(:class:`~repro.substrate.faults.FaultCampaign`): crash/stall a thread
mid-operation, delay a hot loop, fail a CAS spuriously — and the
pending-aware checkers still deliver verdicts for the survivors.
Failures are greedily shrunk (:func:`shrink_failure`): drop faults and
truncate the schedule while the failure persists.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.checkers.cal import CALChecker
from repro.checkers.caspec import CASpec
from repro.checkers.linearizability import LinearizabilityChecker
from repro.checkers.seqspec import SequentialSpec
from repro.checkers.verify import ViewFn, _validate_singleton_witness
from repro.core.history import History
from repro.obs.metrics import Metrics, observe_run
from repro.obs.report import CounterexampleReport
from repro.substrate.explore import SetupFn, run_random, run_schedule
from repro.substrate.faults import FaultCampaign, FaultPlan
from repro.substrate.runtime import RunResult
from repro.substrate.schedulers import PrefixRandomScheduler, RandomScheduler

Faults = Union[FaultCampaign, FaultPlan, None]

Stats = Optional[Dict[str, Dict[str, Any]]]

Coverage = Optional[Dict[str, Any]]

Corpus = Optional[List[Dict[str, Any]]]

Provenance = Optional[Dict[str, Any]]

#: Schedule-guidance modes accepted by the fuzz drivers.
GUIDANCE_MODES = ("uniform", "greybox")


def _merge_stats(mine: Stats, theirs: Stats) -> Stats:
    """Merge two :meth:`Metrics.snapshot` dicts (either may be None)."""
    if theirs is None:
        return mine
    if mine is None:
        return Metrics.from_snapshot(theirs).snapshot()
    return Metrics.from_snapshot(mine).merge(Metrics.from_snapshot(theirs)).snapshot()


def _merge_coverage(mine: Coverage, theirs: Coverage) -> Coverage:
    """Merge two :meth:`CoverageTracker.snapshot` dicts (either may be None)."""
    from repro.obs.coverage import CoverageTracker

    if theirs is None:
        return mine
    if mine is None:
        return CoverageTracker.from_snapshot(theirs).snapshot()
    return (
        CoverageTracker.from_snapshot(mine)
        .merge(CoverageTracker.from_snapshot(theirs))
        .snapshot()
    )


def _merge_corpus(mine: Corpus, theirs: Corpus) -> Corpus:
    """Merge two :meth:`ScheduleCorpus.snapshot` lists (either may be None)."""
    from repro.search.corpus import ScheduleCorpus

    if theirs is None:
        return mine
    if mine is None:
        return ScheduleCorpus.from_snapshot(theirs).snapshot()
    return (
        ScheduleCorpus.from_snapshot(mine)
        .merge(ScheduleCorpus.from_snapshot(theirs))
        .snapshot()
    )


def _merge_provenance(mine: Provenance, theirs: Provenance) -> Provenance:
    """Merge two :meth:`ExplorationLedger.snapshot` dicts (either may be None)."""
    from repro.obs.provenance import ExplorationLedger

    if theirs is None:
        return mine
    if mine is None:
        return ExplorationLedger.from_snapshot(theirs).snapshot()
    return (
        ExplorationLedger.from_snapshot(mine)
        .merge(ExplorationLedger.from_snapshot(theirs))
        .snapshot()
    )


def _engine_for(guidance: str, corpus, ledger=None):
    """Build the greybox engine for a campaign (None under uniform)."""
    if guidance not in GUIDANCE_MODES:
        raise ValueError(
            f"guidance must be one of {GUIDANCE_MODES}: {guidance!r}"
        )
    if guidance == "uniform":
        return None
    from repro.search.corpus import ScheduleCorpus
    from repro.search.greybox import GreyboxEngine

    if corpus is None:
        corpus = ScheduleCorpus()
    elif not hasattr(corpus, "pick"):  # a snapshot list, not a corpus
        corpus = ScheduleCorpus.from_snapshot(corpus)
    return GreyboxEngine(corpus=corpus, ledger=ledger)


def _campaign_registry(metrics) -> Optional[Metrics]:
    """A fresh campaign-local registry of the caller's registry class.

    Instantiating ``type(metrics)`` (not plain :class:`Metrics`) keeps
    profiling registries (:class:`~repro.obs.profile.SearchProfiler`)
    working end-to-end: the campaign-local instance the checkers see
    carries the same hooks as the caller's.
    """
    return type(metrics)() if metrics is not None else None


def _campaign_ledger(provenance):
    """A fresh campaign-local provenance ledger (same discipline as
    :func:`_campaign_registry`): the campaign records into its own
    instance, exposes the snapshot as ``report.provenance``, and merges
    into the caller's ledger on the way out."""
    return type(provenance)() if provenance is not None else None


@dataclass
class FuzzFailure:
    """One seeded run that violated the specification.

    ``schedule`` is the run's complete decision sequence and ``plan`` the
    fault plan that was active; together they replay the failing run
    exactly (:func:`replay`), independent of the RNG that produced it.
    ``report`` is the rendered :class:`~repro.obs.report.CounterexampleReport`
    for the (shrunk) failure.
    """

    seed: int
    history: History
    reason: str
    schedule: List[int] = field(default_factory=list)
    plan: Optional[FaultPlan] = None
    report: Optional[CounterexampleReport] = None

    def __repr__(self) -> str:
        plan = f", faults={len(self.plan)}" if self.plan else ""
        return (
            f"FuzzFailure(seed={self.seed}, {self.reason}, "
            f"|schedule|={len(self.schedule)}{plan})"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing campaign.

    ``crashed`` counts runs in which at least one thread was halted
    (injected fault or thread exception); such runs are still checked —
    their histories simply contain pending invocations.  ``unknown``
    counts runs whose search check was cut by a budget; ``skipped``
    counts seeds never run because the campaign deadline expired first.
    A report with skipped seeds is not a clean pass over the requested
    range — treat it like a budget-cut exploration.

    ``reports`` collects one :class:`~repro.obs.report.CounterexampleReport`
    per FAIL **and** per budget-cut (UNKNOWN) run.  ``stats`` is the
    campaign's :meth:`~repro.obs.metrics.Metrics.snapshot` when the
    campaign was run with ``metrics=``; parallel campaigns merge worker
    snapshots, so the totals match a sequential run over the same seeds.

    ``deduped`` counts runs whose full schedule digest was already
    verified by a prior campaign (cross-run dedup — the run happened but
    its check was skipped); ``fresh_schedules`` carries the digests of
    newly-verified passing schedules back to the store.  ``quarantined``
    lists chunks the parallel supervisor gave up on (worker kept dying);
    their seeds are included in ``skipped`` — explicit, never silent.
    """

    runs: int = 0
    incomplete: int = 0
    crashed: int = 0
    unknown: int = 0
    skipped: int = 0
    deduped: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    reports: List[CounterexampleReport] = field(default_factory=list)
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    fresh_schedules: List[str] = field(default_factory=list)
    stats: Stats = None
    coverage: Coverage = None
    #: Greybox-campaign corpus snapshot (None under uniform guidance) —
    #: what durable campaigns persist to the store's ``corpus`` table.
    corpus: Corpus = None
    #: :meth:`ExplorationLedger.snapshot` of the campaign's provenance
    #: ledger (None unless the campaign ran with ``provenance=``).
    provenance: Provenance = None

    @property
    def ok(self) -> bool:
        return self.runs > 0 and not self.failures

    def merge(self, other: "FuzzReport") -> None:
        """Fold another report's tallies, failures and stats into this one."""
        self.runs += other.runs
        self.incomplete += other.incomplete
        self.crashed += other.crashed
        self.unknown += other.unknown
        self.skipped += other.skipped
        self.deduped += other.deduped
        self.failures.extend(other.failures)
        self.reports.extend(other.reports)
        self.quarantined.extend(other.quarantined)
        self.fresh_schedules.extend(other.fresh_schedules)
        self.stats = _merge_stats(self.stats, other.stats)
        self.coverage = _merge_coverage(self.coverage, other.coverage)
        # getattr: reports unpickled from pre-corpus campaign stores
        # restore without the attribute.
        self.corpus = _merge_corpus(self.corpus, getattr(other, "corpus", None))
        self.provenance = _merge_provenance(
            self.provenance, getattr(other, "provenance", None)
        )

    def __repr__(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        extra = f", crashed={self.crashed}" if self.crashed else ""
        extra += f", unknown={self.unknown}" if self.unknown else ""
        extra += f", skipped={self.skipped}" if self.skipped else ""
        extra += f", deduped={self.deduped}" if self.deduped else ""
        extra += (
            f", quarantined={len(self.quarantined)}" if self.quarantined else ""
        )
        return (
            f"FuzzReport({verdict}, runs={self.runs}, "
            f"cut={self.incomplete}{extra})"
        )


def _plan_for(faults: Faults, seed: int, tids: Sequence[str]) -> Optional[FaultPlan]:
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults
    return faults.plan(seed, tids)


def _fuzz_run(
    setup: SetupFn,
    seed: int,
    max_steps: Optional[int],
    yield_bias: float,
    faults: Faults,
    engine=None,
) -> Tuple[RunResult, Optional[FaultPlan]]:
    """One seeded run with its (seed-derived) fault plan attached.

    With a greybox ``engine``, the engine may propose a mutated corpus
    prefix for this seed; the run then replays the prefix (clamped) and
    continues with the seed's usual random tail, logging the full
    decision list so the run replays and shrinks like a uniform one.
    A ``None`` proposal — empty corpus, or the exploration coin — is
    the *exact* uniform draw for this seed (same scheduler, same
    stream), so greybox strictly extends the uniform campaign.
    """
    prefix = engine.propose(seed) if engine is not None else None
    if prefix is None:
        scheduler = RandomScheduler(seed=seed, yield_bias=yield_bias)
    else:
        scheduler = PrefixRandomScheduler(
            prefix, seed=seed, yield_bias=yield_bias
        )
    runtime = setup(scheduler)
    plan = _plan_for(faults, seed, runtime.thread_ids)
    if plan is not None:
        runtime.inject(plan)
    result = runtime.run(max_steps=max_steps)
    result.schedule = scheduler.choices()
    return result, plan


def replay(
    setup: SetupFn,
    failure: FuzzFailure,
    max_steps: Optional[int] = None,
) -> RunResult:
    """Reproduce a recorded failure from its stored schedule and plan.

    The returned run's history is identical to ``failure.history`` — no
    re-derivation from the seed, no dependence on RNG internals.
    """
    return run_schedule(
        setup, failure.schedule, max_steps=max_steps, faults=failure.plan
    )


def shrink_failure(
    setup: SetupFn,
    failure: FuzzFailure,
    fails: Callable[[RunResult], Optional[str]],
    max_steps: Optional[int] = None,
    metrics=None,
    trace=None,
) -> FuzzFailure:
    """Greedy counterexample minimization.

    Repeatedly tries (a) dropping one fault from the plan and (b)
    truncating the controlled schedule prefix (halving first, then
    chopping one decision; the replay scheduler defaults the tail), and
    keeps any mutation under which ``fails`` still reports a failure.
    Every accepted mutation strictly shrinks (plan size, prefix length),
    so the loop terminates.  The result replays like any other failure.

    ``metrics`` counts ``shrink.attempts``/``shrink.accepted``; ``trace``
    gets one ``shrink_step`` event per accepted mutation.  Shrink replays
    deliberately do **not** feed the campaign's run/search counters —
    those stay a pure function of the seed range.
    """
    plan = failure.plan
    prefix = list(failure.schedule)
    best = failure

    def attempt(
        candidate_prefix: Sequence[int], candidate_plan: Optional[FaultPlan]
    ) -> Optional[FuzzFailure]:
        if metrics is not None:
            metrics.count("shrink.attempts")
        run = run_schedule(
            setup,
            candidate_prefix,
            max_steps=max_steps,
            faults=candidate_plan,
            clamp=True,
        )
        if not run.completed:
            # A cut run's truncated history can "fail" for bogus reasons;
            # never shrink onto one.
            return None
        reason = fails(run)
        if reason is None:
            return None
        return FuzzFailure(
            failure.seed, run.history, reason, run.schedule, candidate_plan
        )

    def accept(candidate: FuzzFailure) -> None:
        if metrics is not None:
            metrics.count("shrink.accepted")
        if trace is not None:
            trace.emit(
                "shrink_step",
                seed=failure.seed,
                schedule_len=len(candidate.schedule),
                faults=0 if candidate.plan is None else len(candidate.plan),
            )

    improved = True
    while improved:
        improved = False
        if plan is not None and len(plan) > 0:
            for fault in plan:
                smaller = plan.without(fault)
                candidate = attempt(prefix, smaller)
                if candidate is not None:
                    plan, best, improved = smaller, candidate, True
                    accept(candidate)
                    break
            if improved:
                continue
        for new_len in (len(prefix) // 2, len(prefix) - 1):
            if 0 <= new_len < len(prefix):
                candidate = attempt(prefix[:new_len], plan)
                if candidate is not None:
                    prefix, best, improved = prefix[:new_len], candidate, True
                    accept(candidate)
                    break
    return best


def fuzz_cal(
    setup: SetupFn,
    spec: CASpec,
    seeds: Sequence[int] = range(50),
    max_steps: Optional[int] = 5000,
    check_witness: bool = True,
    search: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
    faults: Faults = None,
    node_budget: Optional[int] = None,
    shrink: bool = True,
    deadline_at: Optional[float] = None,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    dedup=None,
    guidance: str = "uniform",
    corpus=None,
    provenance=None,
) -> FuzzReport:
    """Sample random schedules and check CAL on each run.

    Defaults favour witness validation (linear per run) over search,
    since fuzzing targets workloads where search would dominate.  With
    ``faults``, each seed derives a deterministic fault plan; crash runs
    are checked pending-aware (a wait-free exchanger must stay CAL when
    its partner dies mid-exchange).

    ``deadline_at`` is an absolute ``time.monotonic()`` instant: seeds
    not yet started when it passes are counted ``skipped`` instead of
    run — the shared-deadline hook used by the parallel campaign runner.

    ``metrics``/``trace`` (see :mod:`repro.obs`) observe the campaign.
    The campaign's own counters land in ``report.stats`` and are merged
    into the caller's ``metrics``; shrink replays never feed the run or
    search counters, so (deadline-free) campaign stats are a pure
    function of the seed range.

    ``coverage`` (a :class:`~repro.obs.coverage.CoverageTracker`) records
    every attempted run's schedule prefix / history shape / spec
    transitions; shrink replays are excluded, so the tracker too is a
    pure function of the seed range.  With ``progress_every > 0`` and a
    trace sink, a ``campaign_progress`` event is emitted every that many
    attempted seeds.

    ``dedup`` (:class:`~repro.store.dedup.ScheduleDedup`-shaped: a
    ``digest(schedule)``/``seen(digest)`` pair) skips the *check* for
    fault-free runs whose full schedule digest a prior campaign already
    verified — the run is a pure function of its schedule, so the old
    verdict stands.  Deduped runs count in ``report.deduped``; digests
    of newly-passing schedules accumulate in ``report.fresh_schedules``.
    Dedup consults only the pre-campaign ``known`` set (never digests
    minted during this campaign), so tallies stay partition-transparent
    across the parallel runner's chunking.

    ``guidance="greybox"`` closes the coverage-feedback loop (see
    :mod:`repro.search`): runs that mint new coverage fingerprints
    donate their schedule prefix to a corpus, and later seeds replay
    mutated corpus prefixes instead of drawing purely uniformly.
    ``corpus`` optionally warm-starts the engine — either a
    :class:`~repro.search.corpus.ScheduleCorpus` (mutated in place) or
    a snapshot list from the campaign store; the evolved snapshot lands
    in ``report.corpus``.  ``guidance="uniform"`` (the default) is the
    historical campaign, decision for decision.

    ``provenance`` (an :class:`~repro.obs.provenance.ExplorationLedger`)
    collects the greybox engine's energy/mutation/novelty telemetry —
    observation-only, so guided proposals are identical with or without
    it.  The campaign's own snapshot lands in ``report.provenance`` and
    merges into the caller's ledger, mirroring ``metrics``.
    """
    checker = CALChecker(spec)
    report = FuzzReport()
    campaign = _campaign_registry(metrics)
    audit = _campaign_ledger(provenance)
    engine = _engine_for(guidance, corpus, audit)
    started = time.monotonic()

    def diagnose(run: RunResult, stats=None, sink=None):
        """(failure reason or None, budget-cut reason or None)."""
        history = run.history
        if check_witness:
            recorded = view(run.trace) if view is not None else run.trace
            witness = recorded.project_object(spec.oid)
            result = checker.check_witness(history, witness, metrics=stats)
            if not result.ok:
                return result.reason, None
        if search:
            result = checker.check(
                history, node_budget=node_budget, metrics=stats, trace=sink
            )
            if result.unknown:
                return None, result.reason
            if not result.ok:
                return result.reason, None
        return None, None

    if trace is not None:
        trace.emit(
            "campaign_begin",
            driver="fuzz_cal",
            seeds=len(seeds),
            faults=faults is not None,
        )
    for position, seed in enumerate(seeds):
        if deadline_at is not None and time.monotonic() >= deadline_at:
            skipped = len(seeds) - position
            report.skipped += skipped
            if campaign is not None:
                campaign.count("fuzz.skipped", skipped)
            if trace is not None:
                trace.emit("campaign_deadline", skipped=skipped)
            break
        run, plan = _fuzz_run(setup, seed, max_steps, yield_bias, faults, engine)
        if engine is not None:
            engine.observe(position, run, oid=spec.oid)
        if campaign is not None:
            campaign.count("fuzz.seeds")
            observe_run(campaign, run)
        if coverage is not None:
            coverage.observe_run(position, run.schedule, run.history, oid=spec.oid)
            if run.completed:
                recorded = view(run.trace) if view is not None else run.trace
                coverage.observe_spec_trace(
                    spec, recorded.project_object(spec.oid)
                )
        if trace is not None and progress_every and (position + 1) % progress_every == 0:
            live = {}
            if coverage is not None:
                live["distinct_histories"] = len(coverage.histories)
            if engine is not None:
                live.update(engine.stats())
            trace.emit(
                "campaign_progress",
                driver="fuzz_cal",
                attempted=position + 1,
                total=len(seeds),
                runs=report.runs + (1 if run.completed else 0),
                failures=len(report.failures),
                unknown=report.unknown,
                skipped=report.skipped,
                elapsed_s=time.monotonic() - started,
                **live,
            )
        if not run.completed:
            report.incomplete += 1
            if campaign is not None:
                campaign.count("fuzz.incomplete")
            continue
        report.runs += 1
        if run.crashed:
            report.crashed += 1
        digest = None
        if dedup is not None and plan is None:
            # Fault-free runs only: a fault plan changes the verdict, so
            # schedules are only comparable across campaigns without one.
            digest = dedup.digest(run.schedule)
            if dedup.seen(digest):
                report.deduped += 1
                if campaign is not None:
                    campaign.count("fuzz.deduped")
                continue
        reason, unknown_reason = diagnose(run, campaign, trace)
        if unknown_reason is not None:
            report.unknown += 1
            if campaign is not None:
                campaign.count("fuzz.unknown")
            report.reports.append(
                CounterexampleReport.build(
                    run.history,
                    unknown_reason,
                    verdict="unknown",
                    seed=seed,
                    schedule=run.schedule,
                    plan=plan,
                    oid=spec.oid,
                    max_steps=max_steps,
                )
            )
        if reason is not None:
            if engine is not None:
                engine.record_failure(run)
            failure = FuzzFailure(seed, run.history, reason, run.schedule, plan)
            if shrink:
                failure = shrink_failure(
                    setup,
                    failure,
                    lambda r: diagnose(r)[0],
                    max_steps=max_steps,
                    metrics=campaign,
                    trace=trace,
                )
            failure.report = CounterexampleReport.from_failure(
                failure, oid=spec.oid, max_steps=max_steps
            )
            report.failures.append(failure)
            report.reports.append(failure.report)
            if campaign is not None:
                campaign.count("fuzz.failures")
        elif unknown_reason is None and digest is not None:
            report.fresh_schedules.append(digest)
    if campaign is not None:
        report.stats = campaign.snapshot()
        metrics.merge(campaign)
    if coverage is not None:
        report.coverage = coverage.snapshot()
    if engine is not None:
        report.corpus = engine.corpus.snapshot()
    if audit is not None:
        report.provenance = audit.snapshot()
        provenance.merge(audit)
    if trace is not None:
        trace.emit(
            "campaign_end",
            driver="fuzz_cal",
            runs=report.runs,
            failures=len(report.failures),
            unknown=report.unknown,
            skipped=report.skipped,
        )
    return report


def fuzz_linearizability(
    setup: SetupFn,
    spec: SequentialSpec,
    seeds: Sequence[int] = range(50),
    max_steps: Optional[int] = 5000,
    check_witness: bool = False,
    view: Optional[ViewFn] = None,
    yield_bias: float = 0.0,
    faults: Faults = None,
    node_budget: Optional[int] = None,
    shrink: bool = True,
    deadline_at: Optional[float] = None,
    metrics=None,
    trace=None,
    coverage=None,
    progress_every: int = 0,
    dedup=None,
    guidance: str = "uniform",
    corpus=None,
    provenance=None,
) -> FuzzReport:
    """Sample random schedules and check linearizability on each run.

    ``deadline_at``, ``metrics``/``trace``, ``coverage``,
    ``progress_every``, ``dedup``, ``guidance``, ``corpus`` and
    ``provenance`` behave as in :func:`fuzz_cal`.
    """
    checker = LinearizabilityChecker(spec)
    report = FuzzReport()
    campaign = _campaign_registry(metrics)
    audit = _campaign_ledger(provenance)
    engine = _engine_for(guidance, corpus, audit)
    started = time.monotonic()

    def diagnose(run: RunResult, stats=None, sink=None):
        """(failure reason or None, budget-cut reason or None)."""
        history = run.history
        if check_witness:
            recorded = view(run.trace) if view is not None else run.trace
            witness = recorded.project_object(spec.oid)
            problem = _validate_singleton_witness(checker, history, witness)
            if problem is not None:
                return problem, None
        result = checker.check(
            history, node_budget=node_budget, metrics=stats, trace=sink
        )
        if result.unknown:
            return None, result.reason
        if not result.ok:
            return result.reason, None
        return None, None

    if trace is not None:
        trace.emit(
            "campaign_begin",
            driver="fuzz_linearizability",
            seeds=len(seeds),
            faults=faults is not None,
        )
    for position, seed in enumerate(seeds):
        if deadline_at is not None and time.monotonic() >= deadline_at:
            skipped = len(seeds) - position
            report.skipped += skipped
            if campaign is not None:
                campaign.count("fuzz.skipped", skipped)
            if trace is not None:
                trace.emit("campaign_deadline", skipped=skipped)
            break
        run, plan = _fuzz_run(setup, seed, max_steps, yield_bias, faults, engine)
        if engine is not None:
            engine.observe(position, run, oid=spec.oid)
        if campaign is not None:
            campaign.count("fuzz.seeds")
            observe_run(campaign, run)
        if coverage is not None:
            coverage.observe_run(position, run.schedule, run.history, oid=spec.oid)
            if run.completed:
                recorded = view(run.trace) if view is not None else run.trace
                coverage.observe_spec_trace(
                    spec, recorded.project_object(spec.oid)
                )
        if trace is not None and progress_every and (position + 1) % progress_every == 0:
            live = {}
            if coverage is not None:
                live["distinct_histories"] = len(coverage.histories)
            if engine is not None:
                live.update(engine.stats())
            trace.emit(
                "campaign_progress",
                driver="fuzz_linearizability",
                attempted=position + 1,
                total=len(seeds),
                runs=report.runs + (1 if run.completed else 0),
                failures=len(report.failures),
                unknown=report.unknown,
                skipped=report.skipped,
                elapsed_s=time.monotonic() - started,
                **live,
            )
        if not run.completed:
            report.incomplete += 1
            if campaign is not None:
                campaign.count("fuzz.incomplete")
            continue
        report.runs += 1
        if run.crashed:
            report.crashed += 1
        digest = None
        if dedup is not None and plan is None:
            digest = dedup.digest(run.schedule)
            if dedup.seen(digest):
                report.deduped += 1
                if campaign is not None:
                    campaign.count("fuzz.deduped")
                continue
        reason, unknown_reason = diagnose(run, campaign, trace)
        if unknown_reason is not None:
            report.unknown += 1
            if campaign is not None:
                campaign.count("fuzz.unknown")
            report.reports.append(
                CounterexampleReport.build(
                    run.history,
                    unknown_reason,
                    verdict="unknown",
                    seed=seed,
                    schedule=run.schedule,
                    plan=plan,
                    oid=spec.oid,
                    max_steps=max_steps,
                )
            )
        if reason is not None:
            if engine is not None:
                engine.record_failure(run)
            failure = FuzzFailure(seed, run.history, reason, run.schedule, plan)
            if shrink:
                failure = shrink_failure(
                    setup,
                    failure,
                    lambda r: diagnose(r)[0],
                    max_steps=max_steps,
                    metrics=campaign,
                    trace=trace,
                )
            failure.report = CounterexampleReport.from_failure(
                failure, oid=spec.oid, max_steps=max_steps
            )
            report.failures.append(failure)
            report.reports.append(failure.report)
            if campaign is not None:
                campaign.count("fuzz.failures")
        elif unknown_reason is None and digest is not None:
            report.fresh_schedules.append(digest)
    if campaign is not None:
        report.stats = campaign.snapshot()
        metrics.merge(campaign)
    if coverage is not None:
        report.coverage = coverage.snapshot()
    if engine is not None:
        report.corpus = engine.corpus.snapshot()
    if audit is not None:
        report.provenance = audit.snapshot()
        provenance.merge(audit)
    if trace is not None:
        trace.emit(
            "campaign_end",
            driver="fuzz_linearizability",
            runs=report.runs,
            failures=len(report.failures),
            unknown=report.unknown,
            skipped=report.skipped,
        )
    return report

"""Rely/guarantee machinery (§4–§5, Figure 4).

* :mod:`repro.rg.views` — view functions ``F_o`` and their composition:
  how a composite object defines its trace ``T_o`` as a function of its
  subobjects' CA-elements (§4), including the paper's ``F_AR`` and
  ``F_ES``.
* :mod:`repro.rg.actions` — named actions (predicates over atomic
  transitions) and guarantee/rely construction.
* :mod:`repro.rg.monitor` — runtime monitors: every transition must be
  justified by the acting thread's guarantee; global invariants (like
  Figure 4's ``J``) must hold after every step; registered proof-outline
  assertions must be *stable* under interference.
* :mod:`repro.rg.exchanger_rg` — Figure 4 instantiated for an exchanger:
  ``INIT``, ``CLEAN``, ``PASS``, ``XCHG``, ``FAIL``, and invariant ``J``.
"""

from repro.rg.views import (
    ViewFunction,
    compose_views,
    elim_array_view,
    elimination_stack_view,
    identity_view,
    sync_queue_view,
)
from repro.rg.actions import Action, Transition, stutter
from repro.rg.monitor import (
    AssertionViolation,
    GuaranteeMonitor,
    GuaranteeViolation,
    InvariantMonitor,
    InvariantViolation,
    RGViolation,
    StabilityMonitor,
)
from repro.rg.exchanger_rg import exchanger_actions, exchanger_invariant

__all__ = [
    "Action",
    "AssertionViolation",
    "GuaranteeMonitor",
    "GuaranteeViolation",
    "InvariantMonitor",
    "InvariantViolation",
    "RGViolation",
    "StabilityMonitor",
    "Transition",
    "ViewFunction",
    "compose_views",
    "elim_array_view",
    "elimination_stack_view",
    "exchanger_actions",
    "exchanger_invariant",
    "identity_view",
    "stutter",
    "sync_queue_view",
]

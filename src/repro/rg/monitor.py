"""Runtime rely/guarantee monitors.

The paper discharges three kinds of proof obligations for the exchanger
(§5.1); each has a runtime counterpart here, checked on *every* atomic
step of *every* explored interleaving:

* **Guarantee adherence** (:class:`GuaranteeMonitor`) — each transition
  by thread ``t`` is a stutter or is permitted by an action of ``G^t``
  (Figure 4's ``INIT ∨ CLEAN ∨ PASS ∨ XCHG ∨ FAIL``, plus the frame
  action for other objects).
* **Invariant preservation** (:class:`InvariantMonitor`) — a global
  invariant (Figure 4's ``J``) holds after every step.
* **Assertion stability** (:class:`StabilityMonitor`) — proof-outline
  assertions registered by a thread (Figure 1's ``A``, ``B(k)``, …)
  keep holding while *other* threads take steps; this is exactly the
  stability side condition of rely/guarantee reasoning, checked
  operationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.catrace import CATrace
from repro.rg.actions import Action, Transition
from repro.substrate.runtime import World


class RGViolation(AssertionError):
    """Base class for rely/guarantee check failures."""


class GuaranteeViolation(RGViolation):
    """A transition was not justified by the acting thread's guarantee."""


class InvariantViolation(RGViolation):
    """A global invariant failed to hold after a step."""


class AssertionViolation(RGViolation):
    """A registered proof-outline assertion failed (at registration, or
    later — i.e. it was not stable under interference)."""


class GuaranteeMonitor:
    """Checks every transition against the acting thread's guarantee.

    ``actions`` are thread-parametrized: each sees the full transition
    (including ``tid``) and decides whether it permits it.  A record of
    (step index, action name) classifications is kept for inspection —
    the E3 benchmark reports how often each Figure-4 action fires.
    """

    def __init__(self, actions: Sequence[Action]) -> None:
        self.actions = list(actions)
        self.classified: List[Tuple[int, str]] = []
        self._step = 0

    def on_transition(
        self,
        tid: str,
        effect: Any,
        result: Any,
        pre: Dict[str, Any],
        post: Dict[str, Any],
        pre_trace: CATrace,
        post_trace: CATrace,
    ) -> None:
        transition = Transition(
            tid, effect, result, pre, post, pre_trace, post_trace
        )
        self._step += 1
        if transition.is_stutter():
            self.classified.append((self._step, "stutter"))
            return
        for action in self.actions:
            if action.permits(transition):
                self.classified.append((self._step, action.name))
                return
        raise GuaranteeViolation(
            f"step {self._step}: transition by {tid} "
            f"(effect={effect!r}, changed={transition.changed_cells()}, "
            f"appended={transition.appended_elements()!r}) "
            f"is justified by no action of its guarantee"
        )

    def action_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, name in self.classified:
            counts[name] = counts.get(name, 0) + 1
        return counts


class InvariantMonitor:
    """Checks a global invariant after every step (and at start/finish)."""

    def __init__(
        self,
        name: str,
        predicate: Callable[[World], bool],
    ) -> None:
        self.name = name
        self.predicate = predicate
        self._world: Optional[World] = None
        self.checks = 0

    def on_start(self, world: World) -> None:
        self._world = world
        self._check("initially")

    def on_transition(
        self, tid: str, effect: Any, result: Any, pre, post, pre_trace, post_trace
    ) -> None:
        self._check(f"after a step by {tid} ({effect!r})")

    def on_finish(self, world: World) -> None:
        self._check("at termination")

    def _check(self, when: str) -> None:
        assert self._world is not None, "monitor not started"
        self.checks += 1
        if not self.predicate(self._world):
            raise InvariantViolation(f"invariant {self.name} violated {when}")


class StabilityMonitor:
    """Re-checks registered assertions after every interfering step.

    Threads register assertions through the world's assertion registry
    (see :meth:`repro.substrate.context.Ctx.assert_stable`); this monitor
    enforces that each stays true until retracted, no matter which thread
    acts — operational stability under the rely.
    """

    def __init__(self) -> None:
        self._world: Optional[World] = None
        self.rechecks = 0

    def on_start(self, world: World) -> None:
        self._world = world

    def on_transition(
        self, tid: str, effect: Any, result: Any, pre, post, pre_trace, post_trace
    ) -> None:
        assert self._world is not None
        for (owner, name), predicate in list(
            self._world.active_assertions.items()
        ):
            if owner == tid:
                # Stability is an obligation under the *rely* — the other
                # threads' steps.  The owner updates its own assertions as
                # it moves through the proof outline.
                continue
            self.rechecks += 1
            if not predicate(self._world):
                raise AssertionViolation(
                    f"assertion {name!r} of thread {owner} invalidated by a "
                    f"step of {tid} ({effect!r}) — not stable under the rely"
                )

"""Figure 4 instantiated: the exchanger's actions and invariant.

The guarantee of thread ``t`` on an exchanger ``E`` is

    ``G_E^t ≜ (INIT^t ∨ CLEAN^t ∨ PASS^t ∨ XCHG^t ∨ FAIL^t)``

and the rely is the union of the other threads' guarantees plus the
frame action (``IRRELEVANT``) — which, in the runtime monitor, is simply
the fact that the monitor checks each transition against the *acting*
thread's guarantee (stutters and other objects' actions are classified
separately).

Each action below is a predicate over one atomic transition, reading the
pre/post heap snapshots and the pre/post auxiliary trace exactly as the
paper's action formulas read the hooked/unhooked variables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.catrace import CAElement
from repro.objects.exchanger import Exchanger, Offer
from repro.rg.actions import Action, Transition
from repro.rg.monitor import InvariantMonitor
from repro.specs.exchanger_spec import is_failed_exchange, is_swap_pair
from repro.substrate.runtime import World


def _only_changed(transition: Transition, cell_name: str) -> bool:
    return transition.changed_cells() == [cell_name]


def exchanger_actions(exchanger: Exchanger) -> List[Action]:
    """The five actions of Figure 4 for one exchanger instance."""
    g_name = exchanger.g.name
    fail = exchanger.fail_sentinel
    oid = exchanger.oid

    def init(tr: Transition) -> bool:
        # INIT^t ≜ [∃n. g⃐ = null ∧ n.tid = t ∧ n.hole = null ∧ g = n]_g
        if not _only_changed(tr, g_name) or tr.appended_elements():
            return False
        if tr.pre.get(g_name) is not None:
            return False
        offer = tr.post.get(g_name)
        return (
            isinstance(offer, Offer)
            and offer is not fail
            and offer.tid == tr.tid
            and tr.post.get(offer.hole.name, "missing") is None
        )

    def clean(tr: Transition) -> bool:
        # CLEAN^t ≜ [g⃐.hole ≠ null ∧ g = null]_g
        if not _only_changed(tr, g_name) or tr.appended_elements():
            return False
        offer = tr.pre.get(g_name)
        return (
            isinstance(offer, Offer)
            and tr.pre.get(offer.hole.name) is not None
            and tr.post.get(g_name) is None
        )

    def pass_(tr: Transition) -> bool:
        # PASS^t ≜ [g.hole⃐ = null ∧ g.tid = t ∧ g.hole = fail]_{g.hole}
        offer = tr.pre.get(g_name)
        if not isinstance(offer, Offer) or offer.tid != tr.tid:
            return False
        hole_name = offer.hole.name
        if not _only_changed(tr, hole_name) or tr.appended_elements():
            return False
        return (
            tr.pre.get(hole_name) is None
            and tr.post.get(hole_name) is fail
        )

    def xchg(tr: Transition) -> bool:
        # XCHG^t ≜ [∃n ≠ fail. n.tid = t ∧ g.hole⃐ = null ∧ g.tid ≠ t ∧
        #           g.hole = n ∧ T = T⃐ · E.swap(g.tid, g.data, t, n.data)
        #          ]_{g.hole, T}
        offer = tr.pre.get(g_name)
        if not isinstance(offer, Offer) or offer.tid == tr.tid:
            return False
        hole_name = offer.hole.name
        if not _only_changed(tr, hole_name):
            return False
        if tr.pre.get(hole_name) is not None:
            return False
        mine = tr.post.get(hole_name)
        if not isinstance(mine, Offer) or mine is fail or mine.tid != tr.tid:
            return False
        appended = tr.appended_elements()
        if len(appended) != 1:
            return False
        element = appended[0]
        if element.oid != oid or not is_swap_pair(element):
            return False
        expected_ops = {
            (offer.tid, (offer.data,), (True, mine.data)),
            (tr.tid, (mine.data,), (True, offer.data)),
        }
        actual_ops = {
            (op.tid, op.args, op.value) for op in element.operations
        }
        return actual_ops == expected_ops

    def fail_(tr: Transition) -> bool:
        # FAIL^t ≜ [∃d. T = T⃐ · (E.{(t, ex(d) ▷ false, d)})]_T
        if tr.changed_cells():
            return False
        appended = tr.appended_elements()
        if len(appended) != 1:
            return False
        element = appended[0]
        return (
            element.oid == oid
            and is_failed_exchange(element)
            and element.single().tid == tr.tid
        )

    return [
        Action(f"INIT({oid})", init),
        Action(f"CLEAN({oid})", clean),
        Action(f"PASS({oid})", pass_),
        Action(f"XCHG({oid})", xchg),
        Action(f"FAIL({oid})", fail_),
    ]


def in_exchanger(world: World, tid: str, oid: str) -> bool:
    """``InE(t)``: thread ``t`` is currently executing a method of the
    exchanger — it has a pending invocation on ``oid``."""
    per_thread = world.history.project_thread(tid).project_object(oid)
    return any(span.pending for span in per_thread.spans())


def exchanger_invariant(exchanger: Exchanger) -> InvariantMonitor:
    """Figure 4's ``J``: an unsatisfied offer in ``g`` belongs to a thread
    currently participating in an exchange."""
    oid = exchanger.oid

    def j_holds(world: World) -> bool:
        offer = exchanger.g.peek()
        if offer is None:
            return True
        if offer.hole.peek() is not None:
            return True
        return in_exchanger(world, offer.tid, oid)

    return InvariantMonitor(f"J({oid})", j_holds)

"""Named actions: the vocabulary of rely/guarantee conditions (Figure 4).

Following the paper (and the logics it builds on), rely and guarantee
conditions are unions of *actions* — binary relations on shared state,
parametrized by the acting thread.  Here an action is a named predicate
over a :class:`Transition`: the acting thread, the pre/post heap
snapshots and the pre/post auxiliary trace.

A thread's guarantee ``G^t`` is a set of actions; a transition by ``t``
must be a *stutter* (no change to heap or trace) or be permitted by some
action of ``G^t``.  The rely ``R^t`` is, as in the paper, the union of
the other threads' guarantees plus the frame action ``IRRELEVANT_o``
(other objects may extend the trace and touch their own cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.catrace import CAElement, CATrace


@dataclass(frozen=True)
class Transition:
    """One atomic step: who acted and how the shared state changed."""

    tid: str
    effect: Any
    result: Any
    pre: Dict[str, Any]
    post: Dict[str, Any]
    pre_trace: CATrace
    post_trace: CATrace

    def changed_cells(self) -> List[str]:
        """Names of heap cells whose value differs between pre and post.

        Cells absent from ``pre`` (allocated by the acting thread during
        this step) count as changed only if their value is not the
        allocation default — thread-local initialization of fresh cells
        is not interference.
        """
        changed = []
        for name, value in self.post.items():
            if name in self.pre:
                before = self.pre[name]
                if before is not value and before != value:
                    changed.append(name)
        return changed

    def appended_elements(self) -> Tuple[CAElement, ...]:
        """CA-elements appended to the auxiliary trace by this step."""
        k = len(self.pre_trace)
        return tuple(self.post_trace.elements[k:])

    def is_stutter(self) -> bool:
        """No observable change to heap or auxiliary trace."""
        return not self.changed_cells() and not self.appended_elements()


@dataclass(frozen=True)
class Action:
    """A named parametrized action, e.g. ``XCHG^t``."""

    name: str
    permits: Callable[[Transition], bool] = field(compare=False)

    def __repr__(self) -> str:
        return f"Action({self.name})"


def stutter(transition: Transition) -> bool:
    """The implicit identity action present in every guarantee."""
    return transition.is_stutter()


def union(
    actions: Sequence[Action],
) -> Callable[[Transition], Optional[Action]]:
    """Return a classifier: the first action permitting a transition."""

    def classify(transition: Transition) -> Optional[Action]:
        for action in actions:
            if action.permits(transition):
                return action
        return None

    return classify

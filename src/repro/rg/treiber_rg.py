"""Rely/guarantee actions for the central stack (Figure 2's ``Stack``).

The paper omits the central stack's proof as "a straightforward proof of
linearizability" (§5); its action vocabulary is nevertheless needed to
monitor composite elimination-stack runs, so we spell it out: a
successful push/pop CAS changes ``top`` and logs the corresponding
singleton element atomically; failed operations log an effect-free
singleton without touching the heap.
"""

from __future__ import annotations

from typing import List

from repro.objects.treiber_stack import Cell, TreiberStack
from repro.rg.actions import Action, Transition


def treiber_actions(stack: TreiberStack) -> List[Action]:
    """PUSH / POP / FAILED actions for one central-stack instance."""
    top_name = stack.top.name
    oid = stack.oid

    def _logged_singleton(tr: Transition, method: str, value) -> bool:
        appended = tr.appended_elements()
        if len(appended) != 1:
            return False
        element = appended[0]
        if element.oid != oid or not element.is_singleton():
            return False
        op = element.single()
        return op.tid == tr.tid and op.method == method and op.value == value

    def push(tr: Transition) -> bool:
        if tr.changed_cells() != [top_name]:
            return False
        cell = tr.post.get(top_name)
        if not isinstance(cell, Cell) or tr.pre.get(top_name) is not cell.next:
            return False
        return _logged_singleton(tr, "push", (True,))

    def pop(tr: Transition) -> bool:
        if tr.changed_cells() != [top_name]:
            return False
        cell = tr.pre.get(top_name)
        if not isinstance(cell, Cell) or tr.post.get(top_name) is not cell.next:
            return False
        return _logged_singleton(tr, "pop", (True, cell.data))

    def failed(tr: Transition) -> bool:
        if tr.changed_cells():
            return False
        appended = tr.appended_elements()
        if len(appended) != 1:
            return False
        element = appended[0]
        if element.oid != oid or not element.is_singleton():
            return False
        op = element.single()
        if op.tid != tr.tid:
            return False
        return (op.method == "push" and op.value == (False,)) or (
            op.method == "pop" and op.value == (False, 0)
        )

    return [
        Action(f"PUSH({oid})", push),
        Action(f"POP({oid})", pop),
        Action(f"FAILED({oid})", failed),
    ]

"""View functions ``F_o`` (§4) and the paper's instances (§5).

A composite object does not get to instrument its subobjects — that
would break encapsulation.  Instead it supplies a function ``F_o`` from
the CA-elements of its *immediate* subobjects to CA-traces of its own
operations.  The total extension ``F̂_o`` leaves unmapped elements
untouched; the full view is the recursive composition over the nesting:

    ``F_o ≜ F̂_o ∘ (F̂_{o₁} ∘ … ∘ F̂_{oₙ})``,   ``T_o ≜ F_o(T)``.

``F̂_o`` is idempotent, and extensions of disjoint objects commute, so
the composition order within one nesting level is irrelevant (§4).

Instances below: ``F_AR`` (an exchange on any array slot *is* an exchange
on the array), ``F_ES`` (a successful central-stack push/pop is an
elimination-stack push/pop; an elimination swap is a push immediately
followed by the pop it eliminated), and ``F_SQ`` (an exchanger swap
between a putter and a taker is one put/take handoff pair).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.actions import Operation
from repro.core.catrace import CAElement, CATrace
from repro.specs.exchanger_spec import is_swap_pair

TraceFn = Callable[[CATrace], CATrace]


class ViewFunction:
    """``F_o`` as a partial elementwise map, applied via total extension.

    ``mapping(element)`` returns the replacement sequence of CA-elements
    (possibly empty — the element is hidden) or ``None`` when undefined
    (the element passes through unchanged — the ``F̂_o`` case).
    """

    def __init__(
        self,
        oid: str,
        mapping: Callable[[CAElement], Optional[Sequence[CAElement]]],
    ) -> None:
        self.oid = oid
        self._mapping = mapping

    def total(self, element: CAElement) -> Sequence[CAElement]:
        """``F̂_o``: the total extension of the partial map."""
        mapped = self._mapping(element)
        if mapped is None:
            return (element,)
        return tuple(mapped)

    def apply(self, trace: CATrace) -> CATrace:
        out: List[CAElement] = []
        for element in trace:
            out.extend(self.total(element))
        return CATrace(out)

    def __call__(self, trace: CATrace) -> CATrace:
        return self.apply(trace)

    def __repr__(self) -> str:
        return f"ViewFunction(F_{self.oid})"


def identity_view(oid: str) -> ViewFunction:
    """The completely undefined ``F_o`` — used by leaf objects like the
    exchanger (§5.1), for which ``T_o = T|_o``."""
    return ViewFunction(oid, lambda _element: None)


def compose_views(outer: TraceFn, *inner: TraceFn) -> TraceFn:
    """``F_o ∘ (F_{o₁} ∘ … ∘ F_{oₙ})`` — inner views first."""

    def apply(trace: CATrace) -> CATrace:
        for view in inner:
            trace = view(trace)
        return outer(trace)

    return apply


# ----------------------------------------------------------------------
# F_AR (§5): an exchange on any slot is an exchange on the array.
# ----------------------------------------------------------------------
def elim_array_view(
    ar_oid: str, exchanger_oids: Iterable[str]
) -> ViewFunction:
    """``F_AR(E[i].S) ≜ (AR.S)`` — rename slot elements to the array."""
    slots = frozenset(exchanger_oids)

    def mapping(element: CAElement) -> Optional[Sequence[CAElement]]:
        if element.oid not in slots:
            return None
        renamed = [
            Operation(op.tid, ar_oid, op.method, op.args, op.value)
            for op in element.operations
        ]
        return (CAElement(ar_oid, renamed),)

    return ViewFunction(ar_oid, mapping)


# ----------------------------------------------------------------------
# F_ES (§5): the elimination stack's linearization points.
# ----------------------------------------------------------------------
def elimination_stack_view(
    es_oid: str,
    stack_oid: str,
    ar_oid: str,
    pop_sentinel: object = float("inf"),
) -> ViewFunction:
    """The paper's ``F_ES``:

    * ``S.(t, push(n) ▷ true)          ↦ (ES.(t, push(n) ▷ true))``
    * ``S.(t, pop() ▷ true, n)         ↦ (ES.(t, pop() ▷ true, n))``
    * ``AR.{(t, ex(n) ▷ true, ∞), (t', ex(∞) ▷ true, n)}``, ``n ≠ ∞``
      ``↦ (ES.(t, push(n) ▷ true)) · (ES.(t', pop() ▷ true, n))``
      — the push linearized immediately *before* the pop it eliminates.
    * ``S._ ↦ ε``, ``AR._ ↦ ε`` otherwise.
    """

    def mapping(element: CAElement) -> Optional[Sequence[CAElement]]:
        if element.oid == stack_oid:
            if element.is_singleton():
                op = element.single()
                if op.method == "push" and op.value == (True,):
                    return (
                        CAElement(
                            es_oid,
                            [
                                Operation(
                                    op.tid, es_oid, "push", op.args, (True,)
                                )
                            ],
                        ),
                    )
                if (
                    op.method == "pop"
                    and len(op.value) == 2
                    and op.value[0] is True
                ):
                    return (
                        CAElement(
                            es_oid,
                            [Operation(op.tid, es_oid, "pop", (), op.value)],
                        ),
                    )
            return ()  # F_ES(S._) ≜ ε
        if element.oid == ar_oid:
            if is_swap_pair(element):
                ops = sorted(element.operations, key=str)
                pusher = next(
                    (
                        op
                        for op in ops
                        if op.args[0] != pop_sentinel
                        and op.value == (True, pop_sentinel)
                    ),
                    None,
                )
                popper = next(
                    (
                        op
                        for op in ops
                        if op.args[0] == pop_sentinel
                        and op.value[0] is True
                        and op.value[1] != pop_sentinel
                    ),
                    None,
                )
                if pusher is not None and popper is not None:
                    value = pusher.args[0]
                    return (
                        CAElement(
                            es_oid,
                            [
                                Operation(
                                    pusher.tid,
                                    es_oid,
                                    "push",
                                    (value,),
                                    (True,),
                                )
                            ],
                        ),
                        CAElement(
                            es_oid,
                            [
                                Operation(
                                    popper.tid,
                                    es_oid,
                                    "pop",
                                    (),
                                    (True, value),
                                )
                            ],
                        ),
                    )
            return ()  # F_ES(AR._) ≜ ε
        return None

    return ViewFunction(es_oid, mapping)


# ----------------------------------------------------------------------
# F_SQ: an exchanger swap between a putter and a taker is one handoff.
# ----------------------------------------------------------------------
def sync_queue_view(
    sq_oid: str,
    ar_oid: str,
    take_sentinel: object = float("-inf"),
) -> ViewFunction:
    """Unlike ``F_ES``, the handoff stays a *single* CA-element of the
    queue — the put and the take seem to take effect simultaneously at
    the queue's own interface too (the queue is itself a CA-object)."""

    def mapping(element: CAElement) -> Optional[Sequence[CAElement]]:
        if element.oid != ar_oid:
            return None
        if is_swap_pair(element):
            ops = sorted(element.operations, key=str)
            putter = next(
                (
                    op
                    for op in ops
                    if op.args[0] != take_sentinel
                    and op.value == (True, take_sentinel)
                ),
                None,
            )
            taker = next(
                (
                    op
                    for op in ops
                    if op.args[0] == take_sentinel
                    and op.value[0] is True
                    and op.value[1] != take_sentinel
                ),
                None,
            )
            if putter is not None and taker is not None:
                value = putter.args[0]
                return (
                    CAElement(
                        sq_oid,
                        [
                            Operation(
                                putter.tid, sq_oid, "put", (value,), (True,)
                            ),
                            Operation(
                                taker.tid, sq_oid, "take", (), (True, value)
                            ),
                        ],
                    ),
                )
        return ()

    return ViewFunction(sq_oid, mapping)

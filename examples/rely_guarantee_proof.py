#!/usr/bin/env python3
"""Figure 4's rely/guarantee proof of the exchanger, executed.

Three monitors run on every atomic step of every interleaving:

* GuaranteeMonitor — each transition must be a stutter or be permitted
  by one of INIT/CLEAN/PASS/XCHG/FAIL (the acting thread's guarantee);
* InvariantMonitor — ``J``: an unsatisfied offer in ``g`` belongs to a
  thread currently inside the exchanger;
* StabilityMonitor — the proof-outline assertions of the annotated
  exchanger (A, B(k), the line-16/26 disjunctions) must keep holding
  while *other* threads take steps.

Run:  python examples/rely_guarantee_proof.py
"""

from collections import Counter

from repro.objects.exchanger_verified import VerifiedExchanger
from repro.rg import (
    GuaranteeMonitor,
    StabilityMonitor,
    exchanger_actions,
    exchanger_invariant,
)
from repro.substrate import Program, World, explore_all


def build(scheduler):
    world = World()
    exchanger = VerifiedExchanger(world, "E")
    program = Program(world)
    guarantee = GuaranteeMonitor(exchanger_actions(exchanger))
    build.guarantee = guarantee
    program.monitor(guarantee)
    program.monitor(exchanger_invariant(exchanger))
    program.monitor(StabilityMonitor())
    program.thread("t1", lambda ctx: exchanger.exchange(ctx, 3))
    program.thread("t2", lambda ctx: exchanger.exchange(ctx, 4))
    return program.runtime(scheduler)


def main() -> None:
    print(__doc__)
    totals: Counter = Counter()
    runs = 0
    for run in explore_all(build, max_steps=300, preemption_bound=2):
        runs += 1
        totals.update(build.guarantee.action_counts())
    print(f"explored {runs} interleavings — no violation of any kind\n")
    print("transition classification across all runs:")
    width = max(len(name) for name in totals)
    for name, count in totals.most_common():
        print(f"  {name.ljust(width)}  {count}")
    print(
        "\nEvery non-stutter transition was justified by exactly the"
        "\nFigure-4 action the paper's proof assigns to it; J held after"
        "\nevery step; and every interval assertion survived all"
        "\ninterference — the proof, machine-checked."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 3, step by step: why the exchanger has no useful sequential
specification, and how CAL fixes it.

Run:  python examples/figure3_walkthrough.py
"""

from repro.analysis.experiments import checker_comparison_table
from repro.checkers import CALChecker, LinearizabilityChecker
from repro.specs import ExchangerSpec
from repro.substrate.explore import explore_all
from repro.workloads.figure3 import (
    figure3_history_h1,
    figure3_history_h2,
    figure3_history_h3,
    figure3_history_h3_prefix,
    figure3_program,
)

# The "best effort" sequential spec (§3 strawman): exchanges pair up
# across time — the only way a sequential spec can explain a swap.
from repro.specs import SequentializedExchangerSpec as LaxSequentialExchangerSpec


def main() -> None:
    print(__doc__)
    print("Program P:  t1: exchg(3)  ||  t2: exchg(4)  ||  t3: exchg(7)\n")

    cal = CALChecker(ExchangerSpec("E"))
    lax = LinearizabilityChecker(LaxSequentialExchangerSpec("E"))

    from repro.analysis import render_timeline

    for name, history in [
        ("H1", figure3_history_h1()),
        ("H3 (the sequential 'explanation')", figure3_history_h3()),
    ]:
        print(f"{name}:")
        print(render_timeline(history))
        print()

    histories = {
        "H1 (concurrent: t1/t2 swap, t3 fails)": figure3_history_h1(),
        "H2 (CA-history form of H1)": figure3_history_h2(),
        "H3 (sequential 'explanation')": figure3_history_h3(),
        "H3' (prefix of H3: t1 swaps ALONE)": figure3_history_h3_prefix(),
    }

    rows = []
    for name, history in histories.items():
        rows.append(
            (name, lax.check(history).ok, cal.check(history).ok)
        )
    print(
        checker_comparison_table(
            rows, title="Verdicts: lax sequential spec vs CA-spec"
        )
    )

    print(
        "\nThe dilemma (§3): the sequential spec must accept H3 to explain"
        "\nH1 — but specifications are prefix-closed, so it then accepts"
        "\nH3', a thread exchanging without a partner.  The CA-spec"
        "\naccepts H1/H2 and rejects both H3 and H3'.\n"
    )

    print("Exploring every interleaving of P (preemption bound 2)...")
    reachable_h2 = False
    reachable_h3 = False
    one_sided = 0
    runs = 0
    for run in explore_all(figure3_program, max_steps=200, preemption_bound=2):
        runs += 1
        if run.history == figure3_history_h2():
            reachable_h2 = True
        if run.history == figure3_history_h3():
            reachable_h3 = True
        successes = [
            o for o in run.history.operations() if o.value[0] is True
        ]
        if len(successes) % 2:
            one_sided += 1
    print(f"  runs explored:          {runs}")
    print(f"  H2 occurs:              {reachable_h2}")
    print(f"  H3 occurs:              {reachable_h3}")
    print(f"  one-sided successes:    {one_sided}")
    assert reachable_h2 and not reachable_h3 and one_sided == 0
    print("\nExactly as the paper claims: H1/H2 happen, H3 never does.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The motivating performance claim (E10): elimination beats a plain
CAS-retry stack under high contention.

Virtual-time contention simulation (see
``repro.workloads.contention``): every thread gets the same time budget,
effects cost virtual time (failed CAS = a bounced cache line = most
expensive), and throughput is completed operations per 1000 time units
across all threads.

Run:  python examples/throughput_contention.py [--quick]
"""

import sys

from repro.analysis.experiments import throughput_table
from repro.workloads.contention import throughput_sweep


def main() -> None:
    print(__doc__)
    quick = "--quick" in sys.argv
    thread_counts = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16, 32]
    seeds = [1] if quick else [1, 2, 3]
    horizon = 1500.0 if quick else 3000.0
    samples = throughput_sweep(
        thread_counts, horizon=horizon, seeds=seeds
    )
    print(throughput_table(samples, title="ops / 1000 virtual time units"))

    eliminated = {
        (s.threads): s.eliminated_pairs
        for s in samples
        if s.kind == "elimination" and s.threads == thread_counts[-1]
    }
    print(
        f"\neliminated pairs at {thread_counts[-1]} threads: "
        f"{sum(eliminated.values())}"
    )
    print(
        "\nShape to compare with Hendler et al. [10]: all three are"
        "\nsimilar at 1-2 threads; the bare CAS-retry stack flattens as"
        "\ncontention grows; backoff helps in the mid-range; the"
        "\nelimination stack overtakes at high thread counts because"
        "\ncolliding push/pop pairs complete off the hot path."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Coverage saturation: when has a fuzz campaign seen enough?

A fuzz campaign over Figure 3's program P samples random schedules; an
exhaustive exploration (E1) enumerates all of them.  Between the two
sits the practical question every budgeted campaign faces: *how many
seeds until new behaviour stops appearing?*  `CoverageTracker` answers
it with a saturation curve — new distinct histories per bucket of
campaign positions — which flattens to zero as the schedule space is
exhausted.

This walkthrough fuzzes P under an increasing seed budget, prints the
ASCII saturation curve, and checks the plateau against the exhaustive
history count.  The same curve drives the live `hist=` readout of
`python -m repro fuzz` and the inline-SVG chart of `python -m repro
report --html`.

Run:  python examples/coverage_saturation.py
"""

from repro.checkers import fuzz_cal
from repro.obs import CoverageTracker
from repro.specs import ExchangerSpec
from repro.substrate.explore import explore_all
from repro.workloads.figure3 import figure3_program

BUDGETS = [50, 200, 800]
MAX_STEPS = 2000


def distinct_at(tracker: CoverageTracker, budget: int) -> int:
    """Distinct histories among the first ``budget`` campaign positions."""
    return len(
        {f for position, f in tracker.samples.items() if position < budget}
    )


def main() -> None:
    print(__doc__)

    # One campaign at the largest budget; smaller budgets are prefixes
    # of it (seeded runs are deterministic, so seed i's history is the
    # same in every campaign that includes it).
    spec = ExchangerSpec("E")
    tracker = CoverageTracker()
    report = fuzz_cal(
        figure3_program,
        spec,
        seeds=range(max(BUDGETS)),
        max_steps=MAX_STEPS,
        coverage=tracker,
    )
    assert report.ok, "Figure 3's program P is CAL — fuzzing must pass"

    print(f"Fuzzed {tracker.observed} seeds of program P "
          f"(3 threads exchanging 3, 4, 7).\n")
    print(tracker.render(bucket=50))

    print("\nDistinct histories by budget:")
    for budget in BUDGETS:
        print(f"  {budget:>5} seeds: {distinct_at(tracker, budget):>3}")

    # The systematic baseline — E1's enumeration: every interleaving
    # within preemption bound 2 (1650 runs), the paper's Figure 3 sweep.
    exhaustive = CoverageTracker()
    for position, run in enumerate(
        explore_all(figure3_program, max_steps=200, preemption_bound=2)
    ):
        exhaustive.observe_run(position, run.schedule, run.history)
    total = len(exhaustive.histories)
    found = len(tracker.histories)
    print(f"\nE1 baseline (preemption bound 2): {exhaustive.observed} runs, "
          f"{total} distinct histories.")
    print(f"The fuzz campaign found {found} distinct histories with "
          f"{max(BUDGETS)} random seeds ({len(tracker.histories & exhaustive.histories)} "
          "shared with the bounded enumeration — random schedules also "
          "wander outside the preemption bound).")

    curve = tracker.saturation(bucket=50)
    tail_new = sum(new for start, new in curve if start >= max(BUDGETS) // 2)
    half = max(BUDGETS) // 2
    first_bucket = curve[0][1] if curve else 0
    print(f"\nNew histories after seed {half}: {tail_new}, vs "
          f"{first_bucket} in the first {curve[0][0] + 50 if curve else 0} "
          "alone — the rate decays toward zero; the flat tail is the "
          "stopping signal.")
    print("\nDone: the saturation curve is the budget's stopping rule.")


if __name__ == "__main__":
    main()

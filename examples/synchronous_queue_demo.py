#!/usr/bin/env python3
"""The synchronous queue — the paper's second exchanger client (§2).

A handoff queue is itself a CA-object: a ``put`` and its ``take`` seem
to take effect simultaneously, so its CA-spec consists purely of pair
elements.  Unlike the elimination stack — whose view function splits an
exchanger swap into a push followed by the pop it eliminates — the
queue's view ``F_SQ`` keeps the swap as *one* CA-element of the queue.

Run:  python examples/synchronous_queue_demo.py
"""

from repro.checkers import CALChecker, verify_cal
from repro.objects.sync_queue import TAKE_SENTINEL, SyncQueue
from repro.rg.views import compose_views, elim_array_view, sync_queue_view
from repro.specs import SyncQueueSpec
from repro.substrate import Program, World, explore_all


def build(scheduler):
    world = World()
    queue = SyncQueue(world, "SQ", slots=1, max_attempts=2)
    build.queue = queue
    program = Program(world)
    program.thread("p1", lambda ctx: queue.put(ctx, 5))
    program.thread("c1", lambda ctx: queue.take(ctx))
    return program.runtime(scheduler)


def view_for(queue: SyncQueue):
    return compose_views(
        sync_queue_view(queue.oid, queue.elim.oid, TAKE_SENTINEL),
        elim_array_view(queue.elim.oid, queue.elim.subobject_ids),
    )


def main() -> None:
    print(__doc__)

    report = verify_cal(
        build,
        SyncQueueSpec("SQ"),
        max_steps=200,
        view=lambda trace: view_for(build.queue)(trace),
        preemption_bound=2,
    )
    print(f"exhaustive verification: {report}")
    assert report.ok

    for run in explore_all(build, max_steps=200, preemption_bound=2):
        if not run.completed:
            continue
        print("\nsample run:")
        print(f"  returns: {run.returns}")
        viewed = view_for(build.queue)(run.trace).project_object("SQ")
        print(f"  T_SQ = F_SQ(T): {viewed}")
        print(
            "\n  One pair element: the put and the take are simultaneous"
            "\n  at the queue's own interface — the queue is a CA-object"
            "\n  all the way up, not just in its elimination layer."
        )
        break


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: verify that the exchanger is concurrency-aware linearizable.

Builds the wait-free exchanger of Figure 1, explores *every* interleaving
of two concurrent ``exchange`` calls, and checks each run two ways:

* the recorded auxiliary trace ``T`` is a witness the history agrees with
  (Definition 5) — the paper's instrumentation-based proof technique;
* an independent search finds *some* CA-trace of the specification the
  history agrees with (Definition 6).

Run:  python examples/quickstart.py
"""

from repro.checkers import CALChecker, verify_cal
from repro.objects import Exchanger
from repro.specs import ExchangerSpec
from repro.substrate import Program, World, explore_all


def setup(scheduler):
    """Build a fresh world: one exchanger, two exchanging threads.

    Exploration replays this factory for every interleaving, so the
    whole world must be rebuilt each call.
    """
    world = World()
    exchanger = Exchanger(world, "E")
    program = Program(world)
    program.thread("t1", lambda ctx: exchanger.exchange(ctx, 3))
    program.thread("t2", lambda ctx: exchanger.exchange(ctx, 4))
    return program.runtime(scheduler)


def main() -> None:
    # One-call verification: explore everything, check everything.
    report = verify_cal(setup, ExchangerSpec("E"), max_steps=200)
    print(f"exhaustive verification: {report}")
    assert report.ok

    # A closer look at what the runs contain.
    outcomes = {}
    sample_witness = None
    checker = CALChecker(ExchangerSpec("E"))
    for run in explore_all(setup, max_steps=200):
        key = tuple(sorted(run.returns.items()))
        outcomes[key] = outcomes.get(key, 0) + 1
        if sample_witness is None and run.returns["t1"] == (True, 4):
            sample_witness = checker.check(run.history).witness

    print("\nreachable outcomes (runs per outcome):")
    for outcome, count in sorted(outcomes.items(), key=str):
        print(f"  {dict(outcome)}   x{count}")

    print("\na successful run's explaining CA-trace (Def. 6 witness):")
    print(f"  {sample_witness}")
    print(
        "\nNote the pair element: both exchanges 'take effect"
        " simultaneously' — no sequential history can express this"
        " without also admitting a one-sided exchange (§3)."
    )


if __name__ == "__main__":
    main()

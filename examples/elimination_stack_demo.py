#!/usr/bin/env python3
"""The elimination stack (Figure 2), verified modularly (§5).

The modular pipeline:
  * the central stack and each exchanger log their own CA-elements into
    the shared auxiliary trace ``T`` at their linearization points;
  * the composite view ``F_ES ∘ F_AR`` (§5) converts ``T`` into a trace
    of elimination-stack operations — *without ever looking inside* the
    subobjects' implementations;
  * that viewed trace must be a legal sequential stack behaviour that
    the ES-interface history agrees with (Def. 5).

Run:  python examples/elimination_stack_demo.py
"""

from repro.checkers import verify_linearizability
from repro.objects import POP_SENTINEL, EliminationStack
from repro.rg.views import (
    compose_views,
    elim_array_view,
    elimination_stack_view,
)
from repro.specs import StackSpec
from repro.specs.exchanger_spec import is_swap_pair
from repro.substrate import Program, World, explore_all, spawn


def build(scheduler):
    world = World()
    stack = EliminationStack(world, "ES", slots=1, max_attempts=2)
    build.stack = stack
    program = Program(world)
    program.thread("t1", lambda ctx: stack.push(ctx, 7))
    program.thread("t2", lambda ctx: stack.pop(ctx))
    program.thread(
        "t3",
        spawn(lambda ctx: stack.push(ctx, 9), lambda ctx: stack.pop(ctx)),
    )
    return program.runtime(scheduler)


def view_for(stack: EliminationStack):
    return compose_views(
        elimination_stack_view(
            stack.oid, stack.central.oid, stack.elim.oid, POP_SENTINEL
        ),
        elim_array_view(stack.elim.oid, stack.elim.subobject_ids),
    )


def main() -> None:
    print(__doc__)

    print("Modular verification over all interleavings (bound 2)...")
    report = verify_linearizability(
        build,
        StackSpec("ES"),
        max_steps=250,
        check_witness=True,
        view=lambda trace: view_for(build.stack)(trace),
        preemption_bound=2,
    )
    print(f"  {report}")
    assert report.ok

    print("\nLooking for a run where elimination actually fires...")
    for run in explore_all(build, max_steps=250, preemption_bound=2):
        if not run.completed:
            continue
        stack = build.stack
        ar_trace = elim_array_view(
            stack.elim.oid, stack.elim.subobject_ids
        )(run.trace).project_object(stack.elim.oid)
        swaps = [
            e
            for e in ar_trace
            if is_swap_pair(e)
            and POP_SENTINEL in {op.args[0] for op in e.operations}
        ]
        if not swaps:
            continue
        print("\n  raw auxiliary trace T (subobject elements):")
        for element in run.trace:
            print(f"    {element}")
        viewed = view_for(stack)(run.trace).project_object("ES")
        print("\n  F_ES(T) — the elimination-stack view:")
        for element in viewed:
            print(f"    {element}")
        print(
            "\n  The AR swap became a push linearized immediately before"
            "\n  the pop that eliminated it — neither ever touched the"
            "\n  central stack."
        )
        break
    else:
        raise AssertionError("no elimination run found")


if __name__ == "__main__":
    main()

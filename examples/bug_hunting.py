#!/usr/bin/env python3
"""Bug hunting: the naive elimination *queue* is not linearizable.

Elimination is sound for stacks (E5): a colliding push/pop pair can
always be linearized back to back.  For FIFO queues it is unsound
without "aging" (Moir et al.): an eliminated enqueue/dequeue pair jumps
the line past values enqueued earlier.  This walkthrough lets the
checker find that bug in a plausible-looking implementation and prints
the concrete counterexample schedule.

Run:  python examples/bug_hunting.py
"""

from repro.checkers import LinearizabilityChecker, verify_linearizability
from repro.obs import Metrics
from repro.objects import NaiveEliminationQueue
from repro.specs import QueueSpec
from repro.substrate import Program, World
from repro.substrate.schedulers import ReplayScheduler


def build(scheduler):
    world = World()
    queue = NaiveEliminationQueue(world, "EQ", slots=1, max_attempts=2)
    program = Program(world)
    program.thread("t1", lambda ctx: queue.enqueue(ctx, 1))
    program.thread("t2", lambda ctx: queue.enqueue(ctx, 2))
    program.thread("t3", lambda ctx: queue.dequeue(ctx))
    return program.runtime(scheduler)


def main() -> None:
    print(__doc__)
    print("Workload:  t1: enqueue(1)  ||  t2: enqueue(2)  ||  t3: dequeue()")
    print("Exploring all interleavings (preemption bound 2)...\n")

    metrics = Metrics()
    report = verify_linearizability(
        build, QueueSpec("EQ"), max_steps=300, preemption_bound=2,
        metrics=metrics,
    )
    print(f"  {report}")
    print(
        f"  searched {metrics.get('search.nodes')} nodes over"
        f" {metrics.get('lin.checks')} checks"
        f" ({metrics.get('runtime.steps')} simulator steps)"
    )
    assert not report.ok, "the naive queue should be broken!"

    failure = report.failures[0]
    print("\nfirst counterexample, as a report:\n")
    print(failure.report.render())

    print(
        "\n  No linearization exists: the dequeue returned a value whose"
        "\n  enqueue is real-time-ordered after another enqueue whose"
        "\n  value was never dequeued — FIFO order was jumped by the"
        "\n  elimination layer."
    )

    print("\nreplaying the recorded schedule deterministically...")
    runtime = build(ReplayScheduler(failure.schedule))
    result = runtime.run(max_steps=300)
    assert result.history == failure.history
    verdict = LinearizabilityChecker(QueueSpec("EQ")).check(result.history)
    print(f"  replayed verdict: {verdict}")
    print(
        "\nThe fix (Moir et al.): only 'aged' enqueues — whose values"
        "\nhave conceptually reached the head — may eliminate."
    )


if __name__ == "__main__":
    main()

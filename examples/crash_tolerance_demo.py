#!/usr/bin/env python3
"""Crash tolerance: fault injection and pending-aware verdicts.

The paper's exchanger is *wait-free* — a claim about runs in which a
partner stalls or dies.  This walkthrough (1) crashes one of two
exchanging threads mid-operation and shows the survivor's run is still
CAL with the dead thread's invocation left pending, (2) runs a seeded
crash-fault fuzz campaign over the four-thread exchanger, and (3) shows
an oversized exhaustive sweep degrading to an UNKNOWN verdict instead of
hanging.

Run:  python examples/crash_tolerance_demo.py
"""

from repro.checkers import CALChecker, Verdict, fuzz_cal, verify_cal
from repro.specs import ExchangerSpec
from repro.substrate import (
    CrashThread,
    ExploreBudget,
    FaultCampaign,
    FaultPlan,
    run_random,
    run_schedule,
)
from repro.workloads.programs import exchanger_program


def main() -> None:
    print(__doc__)

    # -- 1. one deterministic crash ------------------------------------
    print("1. Crashing t2 before its 3rd step (t1 || t2 exchanging)...")
    setup = exchanger_program([1, 2], wait_rounds=2)
    plan = FaultPlan.of(CrashThread("t2", 2))
    run = run_random(setup, seed=4, max_steps=500, faults=plan)
    print(f"   {run}")
    print(f"   crashed: {run.crashed}")
    print(f"   pending invocations: {run.history.pending()}")

    checker = CALChecker(ExchangerSpec("E"))
    witness = run.trace.project_object("E")
    result = checker.check_witness(run.history, witness)
    print(f"   pending-aware witness check: {result}")
    assert result.ok, "survivor's run must stay CAL"
    print(
        "   The dead thread's operation is resolved *against the witness*:"
        "\n   extended if its swap element reached T, dropped otherwise.\n"
    )

    print("   Replaying schedule + fault plan deterministically...")
    replayed = run_schedule(setup, run.schedule, max_steps=500, faults=plan)
    assert replayed.history == run.history
    assert replayed.crashed == run.crashed
    print("   identical history and crash record.\n")

    # -- 2. a crash-fault fuzz campaign --------------------------------
    print("2. Fuzzing the 4-thread exchanger with 1 crash per seed...")
    report = fuzz_cal(
        exchanger_program([1, 2, 3, 4]),
        ExchangerSpec("E"),
        seeds=range(100),
        max_steps=2000,
        check_witness=True,
        faults=FaultCampaign(crashes=1),
    )
    print(f"   {report}")
    assert report.ok and report.crashed > 0
    print(
        f"   {report.crashed} runs lost a thread mid-exchange;"
        " every verdict still CAL.\n"
    )

    # -- 3. graceful degradation ---------------------------------------
    print("3. An exhaustive sweep far beyond reach, on a 50-run budget...")
    budget = ExploreBudget(max_runs=50)
    sweep = verify_cal(
        exchanger_program([1, 2, 3, 4]),
        ExchangerSpec("E"),
        max_steps=2000,
        check_witness=True,
        search=False,
        budget=budget,
    )
    print(f"   {sweep}")
    print(f"   budget: tripped={budget.tripped} ({budget.reason})")
    assert sweep.verdict is Verdict.UNKNOWN
    print(
        "   UNKNOWN, not a hang — and not a pass: the 50 runs that were"
        "\n   checked are witness-validated, the rest unexplored."
    )


if __name__ == "__main__":
    main()
